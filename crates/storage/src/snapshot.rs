//! The sectioned, page-aligned snapshot format — the persistent form
//! of a [`NodeStore`] that can be **memory-mapped and queried without
//! decoding**.
//!
//! The paper keeps the labeled form as the *primary* representation —
//! "The XML data is stored in labeled form, and indexed" (abstract).
//! PR 1's format persisted that form row-by-row, so opening meant
//! re-materializing every column: cold start was O(data). Version 2
//! persists the store's **physical layout itself**: each column (the
//! document-order columns, both SP/SD clustered permutations, both run
//! directories, the interned-string arena) is one aligned little-endian
//! extent, so a read-only mapping of the file *is* the store.
//!
//! Version 3 adds **per-section compression**: each section-table
//! entry carries an *encoding descriptor*, and the bulky column
//! sections are stored packed (FOR delta blocks, bit-packed tags, a
//! dictionary-coded P-label column — see [`crate::packed`]) while the
//! small directory/arena sections stay raw. Readers branch on the
//! descriptor, never on the version, so v2 files (all descriptors 0)
//! open through the same code; v1 files still fail with a typed
//! [`SnapshotError::BadVersion`].
//!
//! # On-disk layout (version 3)
//!
//! ```text
//! ┌────────────────────────────────────────────────────────┐ 0
//! │ header page (4096 B)                                   │
//! │   magic "BLASSNAP" · version · counts · file_len       │
//! │   section table: 19 × { id, encoding, offset, len }    │
//! │   … zero padding …                                     │
//! │   header checksum (fnv1a-64 over the page)             │
//! ├────────────────────────────────────────────────────────┤ 4096
//! │ sections, each offset 64-byte aligned:                 │
//! │   doc columns   labels=FOR³ · plabels=dict · tags=bit  │
//! │                 · value_ids=FOR                        │
//! │   SP clustering labels=FOR³ · rows=FOR · values=FOR    │
//! │                 · run keys (raw) · run ends (raw)      │
//! │   SD clustering labels=FOR³ · rows=FOR · values=FOR    │
//! │                 · run keys (raw) · run ends (raw)      │
//! │   tag table     offsets·utf8 bytes            (raw)    │
//! │   value arena   offsets·utf8 bytes·sorted ids (raw)    │
//! ├────────────────────────────────────────────────────────┤
//! │ footer checksum (fnv1a-64 over everything above)       │
//! └────────────────────────────────────────────────────────┘ file_len
//! ```
//!
//! Encodings (the descriptor in each table entry):
//!
//! | code | name      | used for                 | layout                  |
//! |------|-----------|--------------------------|-------------------------|
//! | 0    | raw       | everything in v2; small sections in v3 | LE extents |
//! | 1    | FOR       | value ids, permutation rows | [`crate::packed::encode_plane`] |
//! | 2    | labels    | D-label columns          | three FOR planes: `start`, `end − start`, `level` |
//! | 3    | dict      | doc P-labels             | FOR plane of indexes into the (raw) `SP_KEYS` dictionary |
//! | 4    | bitpack   | doc tags                 | [`crate::packed::encode_bitpacked`] |
//!
//! Value-id planes remap the [`NO_VALUE`] sentinel (`u32::MAX`) to
//! `value_count` on write so FOR blocks stay narrow; readers remap it
//! back.
//!
//! Raw label extents store the `repr(C)` layout of
//! [`blas_labeling::DLabel`] (12 bytes, zeroed padding); `u128`
//! P-label extents are 16-byte values. Because every section offset is
//! 64-byte aligned *relative to the file start* and
//! [`crate::mapped::MappedBytes`] guarantees a page-aligned base,
//! every raw extent can be cast in place to its typed slice on a
//! little-endian target; packed sections are read byte-wise per block
//! and need no alignment at all.
//!
//! # Two read paths, two validation depths
//!
//! * [`decode`] — the owned path ([`Snapshot`] out): verifies the
//!   **footer checksum over the whole file**, re-validates every
//!   record (tag ids, value ids, UTF-8), and materializes owned
//!   records. O(data), maximally defensive.
//! * the crate-internal `TypedView` (behind `NodeStore::from_mapped`) — the
//!   zero-decode path: verifies the **header checksum**, the section
//!   table (bounds, order, alignment, expected lengths), the run
//!   directories and arena offset tables — O(header + directory), so
//!   opening stays O(1) in the data size. The body checksum is *not*
//!   streamed on this path (that would re-read every page and defeat
//!   lazy faulting); [`verify_checksum`] exists for callers that want
//!   the full pass, and all write paths emit both checksums.
//!
//! Every malformed input that reaches a validation check returns a
//! typed [`SnapshotError`] — never a panic. On the mapped path the
//! checks cover the header, the section table, the run directories
//! and the arenas; per-row content (the row permutations, tag and
//! value-id columns) is protected only by the footer checksum, so a
//! file corrupted *there* can open successfully and then panic with an
//! out-of-bounds index when a query touches the damaged rows — the
//! same trust model as any page-cached mmap store. Run
//! [`verify_checksum`] first when the file's provenance is doubtful;
//! [`decode`] always does.

use crate::packed::{
    encode_bitpacked, encode_label_planes, encode_plane, BitpackRef, LabelPlanesRef, PlaneRef,
};
use crate::relation::{NodeRecord, NodeStore, NO_VALUE};
use blas_labeling::DLabel;
use blas_xml::TagId;
use std::fmt;

const MAGIC: &[u8; 8] = b"BLASSNAP";
const VERSION: u32 = 3;
/// Oldest version this reader still opens (v1 was the PR-1 row format).
const MIN_VERSION: u32 = 2;
/// Size of the header page; also the alignment of the first section.
pub const HEADER_LEN: usize = 4096;
/// Alignment of every section offset (relative to the file start).
pub const SECTION_ALIGN: usize = 64;

// Section ids, in file order.
const SEC_DOC_LABELS: u32 = 1;
const SEC_DOC_PLABELS: u32 = 2;
const SEC_DOC_TAGS: u32 = 3;
const SEC_DOC_VALUE_IDS: u32 = 4;
const SEC_SP_LABELS: u32 = 5;
const SEC_SP_ROWS: u32 = 6;
const SEC_SP_VALUES: u32 = 7;
const SEC_SP_KEYS: u32 = 8;
const SEC_SP_ENDS: u32 = 9;
const SEC_SD_LABELS: u32 = 10;
const SEC_SD_ROWS: u32 = 11;
const SEC_SD_VALUES: u32 = 12;
const SEC_SD_KEYS: u32 = 13;
const SEC_SD_ENDS: u32 = 14;
const SEC_TAG_OFFSETS: u32 = 15;
const SEC_TAG_BYTES: u32 = 16;
const SEC_VALUE_OFFSETS: u32 = 17;
const SEC_VALUE_BYTES: u32 = 18;
const SEC_VALUE_SORTED: u32 = 19;
const SECTION_IDS: [u32; 19] = [
    SEC_DOC_LABELS,
    SEC_DOC_PLABELS,
    SEC_DOC_TAGS,
    SEC_DOC_VALUE_IDS,
    SEC_SP_LABELS,
    SEC_SP_ROWS,
    SEC_SP_VALUES,
    SEC_SP_KEYS,
    SEC_SP_ENDS,
    SEC_SD_LABELS,
    SEC_SD_ROWS,
    SEC_SD_VALUES,
    SEC_SD_KEYS,
    SEC_SD_ENDS,
    SEC_TAG_OFFSETS,
    SEC_TAG_BYTES,
    SEC_VALUE_OFFSETS,
    SEC_VALUE_BYTES,
    SEC_VALUE_SORTED,
];

// Section encoding descriptors (the per-entry field at table offset
// +4, which v2 wrote as zero padding — so every v2 file reads as
// "all raw" without a special case).
const ENC_RAW: u32 = 0;
const ENC_FOR: u32 = 1;
const ENC_LABELS: u32 = 2;
const ENC_DICT: u32 = 3;
const ENC_BITPACK: u32 = 4;

/// The packed encoding the v3 writer uses for a section (`ENC_RAW`
/// for sections that stay raw). Readers accept exactly `ENC_RAW` or
/// this per section — nothing else.
fn packed_enc(id: u32) -> u32 {
    match id {
        SEC_DOC_LABELS | SEC_SP_LABELS | SEC_SD_LABELS => ENC_LABELS,
        SEC_DOC_PLABELS => ENC_DICT,
        SEC_DOC_TAGS => ENC_BITPACK,
        SEC_DOC_VALUE_IDS | SEC_SP_ROWS | SEC_SP_VALUES | SEC_SD_ROWS | SEC_SD_VALUES => ENC_FOR,
        _ => ENC_RAW,
    }
}

const DLABEL_BYTES: usize = 12;
// The mapped path casts label extents to `&[DLabel]`; that is only
// sound while the repr(C) struct is exactly the 12-byte wire layout.
const _: () = assert!(std::mem::size_of::<DLabel>() == DLABEL_BYTES);
const _: () = assert!(std::mem::align_of::<DLabel>() == 4);

/// Why a snapshot failed to open or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended early, or the header's `file_len` disagrees with
    /// the bytes actually present.
    Truncated,
    /// Header or footer checksum mismatch (corruption).
    ChecksumMismatch,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A record references a tag id outside the tag table.
    DanglingTag(u32),
    /// The section table or a section's contents are structurally
    /// inconsistent (bad bounds, misalignment, non-monotonic
    /// directory, …). The message names the check that failed.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a BLAS snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            Self::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            Self::DanglingTag(t) => write!(f, "record references unknown tag {t}"),
            Self::Corrupt(what) => write!(f, "snapshot structurally corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A fully decoded snapshot: everything needed to rebuild a queryable
/// store in owned memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Tuples in start order.
    pub records: Vec<NodeRecord>,
    /// Tag names in `TagId` order.
    pub tag_names: Vec<String>,
    /// P-label domain: number of tags the domain was built for.
    pub num_tags: u32,
    /// P-label domain: digit count `H`.
    pub digits: u32,
}

/// The non-column payload of a snapshot: what a caller needs besides
/// the [`NodeStore`] itself to bind and answer queries (tag table and
/// P-label domain parameters). Returned by `NodeStore::from_mapped`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Tag names in `TagId` order.
    pub tag_names: Vec<String>,
    /// P-label domain: number of tags.
    pub num_tags: u32,
    /// P-label domain: digit count `H`.
    pub digits: u32,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serialize an owned snapshot. Builds the clustered store first (the
/// format persists the physical layout, so the permutations must
/// exist) — [`encode_store`] is the allocation-free path when a store
/// is already at hand.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let store = NodeStore::from_records(snapshot.records.clone());
    encode_store(&store, &snapshot.tag_names, snapshot.num_tags, snapshot.digits)
}

/// Serialize a store into the sectioned format, straight from its
/// columns — no intermediate [`NodeRecord`] materialization and no
/// string clones. Writes version 3: bulky column sections packed (see
/// the module docs), directories and arenas raw.
pub fn encode_store(
    store: &NodeStore,
    tag_names: &[String],
    num_tags: u32,
    digits: u32,
) -> Vec<u8> {
    assert_delta_free(store);
    encode_store_impl(store, tag_names, num_tags, digits, true)
}

/// Snapshots persist the base columns only; encoding a store with
/// pending edits would silently drop them, so refuse it — compaction
/// (folding the delta into fresh columns) must happen first.
fn assert_delta_free(store: &NodeStore) {
    assert!(
        store.delta().is_none_or(crate::delta::DeltaStore::is_noop),
        "cannot encode a store with a live delta; compact it into fresh columns first"
    );
}

/// Serialize a store in the all-raw version-2 layout. Kept for
/// compatibility fixtures and the v2 reader tests; new files should
/// use [`encode_store`].
#[doc(hidden)]
pub fn encode_store_v2(
    store: &NodeStore,
    tag_names: &[String],
    num_tags: u32,
    digits: u32,
) -> Vec<u8> {
    assert_delta_free(store);
    encode_store_impl(store, tag_names, num_tags, digits, false)
}

/// Split a label column into the three planes the packed layout
/// stores: `start`, `end − start` (wrapping, so even invalid labels
/// round-trip bit-exactly), `level`.
fn split_labels(labels: &[DLabel]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut starts = Vec::with_capacity(labels.len());
    let mut extents = Vec::with_capacity(labels.len());
    let mut levels = Vec::with_capacity(labels.len());
    for l in labels {
        starts.push(l.start);
        extents.push(l.end.wrapping_sub(l.start));
        levels.push(l.level as u32);
    }
    (starts, extents, levels)
}

fn encode_store_impl(
    store: &NodeStore,
    tag_names: &[String],
    num_tags: u32,
    digits: u32,
    packed: bool,
) -> Vec<u8> {
    let n = store.len();
    let value_count = store.value_count();
    // The value-id sentinel remap keeps FOR blocks narrow: NO_VALUE
    // (u32::MAX) becomes `value_count`, one past the largest real id.
    let sentinel = value_count as u32;
    let remap = |ids: Vec<u32>| -> Vec<u32> {
        ids.into_iter().map(|v| if v == NO_VALUE { sentinel } else { v }).collect()
    };
    let mut out = vec![0u8; HEADER_LEN];
    let mut table: Vec<(u32, u32, u64, u64)> = Vec::with_capacity(SECTION_IDS.len());

    let mut section = |out: &mut Vec<u8>, id: u32, enc: u32, write: &dyn Fn(&mut Vec<u8>)| {
        while !out.len().is_multiple_of(SECTION_ALIGN) {
            out.push(0);
        }
        let off = out.len();
        write(out);
        table.push((id, enc, off as u64, (out.len() - off) as u64));
    };

    // Decode-on-write: the accessors below return owned vectors from
    // either column source, so a *mapped* (possibly packed) store can
    // be re-serialized too. The write path is O(data) anyway.
    let doc_labels = store.doc_labels_vec();
    let doc_tags = store.doc_tags_vec();
    let doc_vids = store.doc_value_ids_vec();
    let sp_labels = store.sp_labels_vec();
    let sp_rows = store.sp_rows_vec();
    let sp_values = store.sp_values_vec();
    let sd_labels = store.sd_labels_vec();
    let sd_rows = store.sd_rows_vec();
    let sd_values = store.sd_values_vec();

    if packed {
        let (s, e, l) = split_labels(&doc_labels);
        section(&mut out, SEC_DOC_LABELS, ENC_LABELS, &|o| {
            encode_label_planes(&s, &e, &l, o);
        });
        let dict = store.plabel_dict_indices();
        section(&mut out, SEC_DOC_PLABELS, ENC_DICT, &|o| {
            encode_plane(&dict, o);
        });
        section(&mut out, SEC_DOC_TAGS, ENC_BITPACK, &|o| {
            encode_bitpacked(&doc_tags, o);
        });
        let vids = remap(doc_vids.clone());
        section(&mut out, SEC_DOC_VALUE_IDS, ENC_FOR, &|o| {
            encode_plane(&vids, o);
        });
        let (s, e, l) = split_labels(&sp_labels);
        section(&mut out, SEC_SP_LABELS, ENC_LABELS, &|o| {
            encode_label_planes(&s, &e, &l, o);
        });
        section(&mut out, SEC_SP_ROWS, ENC_FOR, &|o| {
            encode_plane(&sp_rows, o);
        });
        let vids = remap(sp_values.clone());
        section(&mut out, SEC_SP_VALUES, ENC_FOR, &|o| {
            encode_plane(&vids, o);
        });
    } else {
        section(&mut out, SEC_DOC_LABELS, ENC_RAW, &|o| put_labels(o, &doc_labels));
        let doc_plabels = store.doc_plabels_vec();
        section(&mut out, SEC_DOC_PLABELS, ENC_RAW, &|o| put_u128s(o, &doc_plabels));
        section(&mut out, SEC_DOC_TAGS, ENC_RAW, &|o| put_u32s(o, &doc_tags));
        section(&mut out, SEC_DOC_VALUE_IDS, ENC_RAW, &|o| put_u32s(o, &doc_vids));
        section(&mut out, SEC_SP_LABELS, ENC_RAW, &|o| put_labels(o, &sp_labels));
        section(&mut out, SEC_SP_ROWS, ENC_RAW, &|o| put_u32s(o, &sp_rows));
        section(&mut out, SEC_SP_VALUES, ENC_RAW, &|o| put_u32s(o, &sp_values));
    }
    section(&mut out, SEC_SP_KEYS, ENC_RAW, &|o| put_u128s(o, &store.sp_keys));
    section(&mut out, SEC_SP_ENDS, ENC_RAW, &|o| put_u32s(o, &store.sp_ends));
    if packed {
        let (s, e, l) = split_labels(&sd_labels);
        section(&mut out, SEC_SD_LABELS, ENC_LABELS, &|o| {
            encode_label_planes(&s, &e, &l, o);
        });
        section(&mut out, SEC_SD_ROWS, ENC_FOR, &|o| {
            encode_plane(&sd_rows, o);
        });
        let vids = remap(sd_values.clone());
        section(&mut out, SEC_SD_VALUES, ENC_FOR, &|o| {
            encode_plane(&vids, o);
        });
    } else {
        section(&mut out, SEC_SD_LABELS, ENC_RAW, &|o| put_labels(o, &sd_labels));
        section(&mut out, SEC_SD_ROWS, ENC_RAW, &|o| put_u32s(o, &sd_rows));
        section(&mut out, SEC_SD_VALUES, ENC_RAW, &|o| put_u32s(o, &sd_values));
    }
    section(&mut out, SEC_SD_KEYS, ENC_RAW, &|o| put_u32s(o, &store.sd_keys));
    section(&mut out, SEC_SD_ENDS, ENC_RAW, &|o| put_u32s(o, &store.sd_ends));

    // Tag table: u32 offset column + one UTF-8 byte extent.
    section(&mut out, SEC_TAG_OFFSETS, ENC_RAW, &|out: &mut Vec<u8>| {
        let mut off = 0u32;
        out.extend_from_slice(&off.to_le_bytes());
        for name in tag_names {
            off += name.len() as u32;
            out.extend_from_slice(&off.to_le_bytes());
        }
    });
    section(&mut out, SEC_TAG_BYTES, ENC_RAW, &|out: &mut Vec<u8>| {
        for name in tag_names {
            out.extend_from_slice(name.as_bytes());
        }
    });

    // Value arena: u64 offsets + bytes + the string-sorted id column.
    section(&mut out, SEC_VALUE_OFFSETS, ENC_RAW, &|out: &mut Vec<u8>| {
        let mut off = 0u64;
        out.extend_from_slice(&off.to_le_bytes());
        for i in 0..value_count {
            off += store.value(i as u32).map_or(0, |s| s.len() as u64);
            out.extend_from_slice(&off.to_le_bytes());
        }
    });
    section(&mut out, SEC_VALUE_BYTES, ENC_RAW, &|out: &mut Vec<u8>| {
        for i in 0..value_count {
            if let Some(s) = store.value(i as u32) {
                out.extend_from_slice(s.as_bytes());
            }
        }
    });
    section(&mut out, SEC_VALUE_SORTED, ENC_RAW, &|o| put_u32s(o, &store.value_sorted));

    // Header: counts, file length, section table, own checksum.
    let version = if packed { VERSION } else { 2 };
    let file_len = (out.len() + 8) as u64;
    out[0..8].copy_from_slice(MAGIC);
    out[8..12].copy_from_slice(&version.to_le_bytes());
    out[12..16].copy_from_slice(&(SECTION_IDS.len() as u32).to_le_bytes());
    out[16..20].copy_from_slice(&num_tags.to_le_bytes());
    out[20..24].copy_from_slice(&digits.to_le_bytes());
    out[24..32].copy_from_slice(&(n as u64).to_le_bytes());
    out[32..40].copy_from_slice(&(value_count as u64).to_le_bytes());
    out[40..44].copy_from_slice(&(tag_names.len() as u32).to_le_bytes());
    out[44..48].copy_from_slice(&(store.sp_run_count() as u32).to_le_bytes());
    out[48..52].copy_from_slice(&(store.sd_run_count() as u32).to_le_bytes());
    out[56..64].copy_from_slice(&file_len.to_le_bytes());
    for (i, (id, enc, off, len)) in table.iter().enumerate() {
        let at = 64 + i * 24;
        out[at..at + 4].copy_from_slice(&id.to_le_bytes());
        out[at + 4..at + 8].copy_from_slice(&enc.to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
    }
    let header_sum = fnv1a(&out[..HEADER_LEN - 8]);
    out[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&header_sum.to_le_bytes());

    // Footer: checksum over everything (header included).
    let footer = fnv1a(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

/// Write a label column in the wire layout (zeroed repr(C) padding —
/// field-by-field, never a memcpy of possibly-uninitialized padding).
fn put_labels(out: &mut Vec<u8>, col: &[DLabel]) {
    for l in col {
        out.extend_from_slice(&l.start.to_le_bytes());
        out.extend_from_slice(&l.end.to_le_bytes());
        out.extend_from_slice(&l.level.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
    }
}

fn put_u32s(out: &mut Vec<u8>, col: &[u32]) {
    for v in col {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u128s(out: &mut Vec<u8>, col: &[u128]) {
    for v in col {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Header / section-table parsing (alignment-free)
// ---------------------------------------------------------------------

/// The parsed header: counts plus one validated byte slice per
/// section, in [`SECTION_IDS`] order. Performs **no body checksum**
/// and no typed casts — safe on any byte alignment.
#[derive(Debug)]
struct RawView<'a> {
    num_tags: u32,
    digits: u32,
    record_count: usize,
    value_count: usize,
    tag_count: usize,
    sp_runs: usize,
    sd_runs: usize,
    sections: [&'a [u8]; SECTION_IDS.len()],
    /// Per-section encoding descriptor, in [`SECTION_IDS`] order.
    /// Validated against [`packed_enc`] at parse time, so downstream
    /// readers only ever see `ENC_RAW` or the one packed code a
    /// section can legitimately carry.
    encs: [u32; SECTION_IDS.len()],
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

impl<'a> RawView<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 12 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32_at(bytes, 8);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion(version));
        }
        if bytes.len() < HEADER_LEN + 8 {
            return Err(SnapshotError::Truncated);
        }
        let stored = u64_at(bytes, HEADER_LEN - 8);
        if fnv1a(&bytes[..HEADER_LEN - 8]) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let section_count = u32_at(bytes, 12) as usize;
        if section_count != SECTION_IDS.len() {
            return Err(SnapshotError::Corrupt("unexpected section count"));
        }
        let file_len = u64_at(bytes, 56);
        if (bytes.len() as u64) < file_len {
            return Err(SnapshotError::Truncated);
        }
        if (bytes.len() as u64) > file_len {
            return Err(SnapshotError::Corrupt("trailing bytes after footer"));
        }
        let record_count = usize::try_from(u64_at(bytes, 24))
            .map_err(|_| SnapshotError::Corrupt("record count exceeds address space"))?;
        let value_count = usize::try_from(u64_at(bytes, 32))
            .map_err(|_| SnapshotError::Corrupt("value count exceeds address space"))?;
        let tag_count = u32_at(bytes, 40) as usize;
        let sp_runs = u32_at(bytes, 44) as usize;
        let sd_runs = u32_at(bytes, 48) as usize;

        let body_end = bytes.len() - 8; // footer excluded
        let mut sections: [&[u8]; SECTION_IDS.len()] = [&[]; SECTION_IDS.len()];
        let mut encs = [ENC_RAW; SECTION_IDS.len()];
        let mut prev_end = HEADER_LEN as u64;
        for (i, expect_id) in SECTION_IDS.iter().enumerate() {
            let at = 64 + i * 24;
            let id = u32_at(bytes, at);
            if id != *expect_id {
                return Err(SnapshotError::Corrupt("section table out of order"));
            }
            let enc = u32_at(bytes, at + 4);
            // v2 wrote zero padding here, so old files read as all-raw;
            // v3 may pack a section with exactly its designated codec.
            if enc != ENC_RAW && (version < 3 || enc != packed_enc(id)) {
                return Err(SnapshotError::Corrupt("unknown section encoding"));
            }
            encs[i] = enc;
            let off = u64_at(bytes, at + 8);
            let len = u64_at(bytes, at + 16);
            if !off.is_multiple_of(SECTION_ALIGN as u64) {
                return Err(SnapshotError::Corrupt("misaligned section offset"));
            }
            if off < prev_end {
                return Err(SnapshotError::Corrupt("overlapping sections"));
            }
            let end = off.checked_add(len).ok_or(SnapshotError::Corrupt("section overflow"))?;
            if end > body_end as u64 {
                return Err(SnapshotError::Truncated);
            }
            sections[i] = &bytes[off as usize..end as usize];
            prev_end = end;
        }

        let view = Self {
            num_tags: u32_at(bytes, 16),
            digits: u32_at(bytes, 20),
            record_count,
            value_count,
            tag_count,
            sp_runs,
            sd_runs,
            sections,
            encs,
        };
        view.check_lengths()?;
        Ok(view)
    }

    fn section(&self, id: u32) -> &'a [u8] {
        let i = SECTION_IDS.iter().position(|&s| s == id).expect("known id");
        self.sections[i]
    }

    /// The validated encoding descriptor of a section.
    fn enc(&self, id: u32) -> u32 {
        let i = SECTION_IDS.iter().position(|&s| s == id).expect("known id");
        self.encs[i]
    }

    /// Every **raw** section length must match the header counts
    /// exactly. Packed sections have internal headers instead; their
    /// structure (including the value count) is validated by the plane
    /// parsers when the section is actually read.
    fn check_lengths(&self) -> Result<(), SnapshotError> {
        let n = self.record_count;
        let checks: [(u32, usize); 19] = [
            (SEC_DOC_LABELS, n * DLABEL_BYTES),
            (SEC_DOC_PLABELS, n * 16),
            (SEC_DOC_TAGS, n * 4),
            (SEC_DOC_VALUE_IDS, n * 4),
            (SEC_SP_LABELS, n * DLABEL_BYTES),
            (SEC_SP_ROWS, n * 4),
            (SEC_SP_VALUES, n * 4),
            (SEC_SP_KEYS, self.sp_runs * 16),
            (SEC_SP_ENDS, self.sp_runs * 4),
            (SEC_SD_LABELS, n * DLABEL_BYTES),
            (SEC_SD_ROWS, n * 4),
            (SEC_SD_VALUES, n * 4),
            (SEC_SD_KEYS, self.sd_runs * 4),
            (SEC_SD_ENDS, self.sd_runs * 4),
            (SEC_TAG_OFFSETS, (self.tag_count + 1) * 4),
            (SEC_TAG_BYTES, usize::MAX), // free-length
            (SEC_VALUE_OFFSETS, (self.value_count + 1) * 8),
            (SEC_VALUE_BYTES, usize::MAX), // free-length
            (SEC_VALUE_SORTED, self.value_count * 4),
        ];
        for (id, want) in checks {
            if want != usize::MAX && self.enc(id) == ENC_RAW && self.section(id).len() != want {
                return Err(SnapshotError::Corrupt("section length disagrees with counts"));
            }
        }
        Ok(())
    }

    /// Decode the tag table (owned; it is tiny and callers always need
    /// owned names to build an interner).
    fn tag_names(&self) -> Result<Vec<String>, SnapshotError> {
        let offsets = self.section(SEC_TAG_OFFSETS);
        let bytes = self.section(SEC_TAG_BYTES);
        let mut names = Vec::with_capacity(self.tag_count);
        let mut prev = 0usize;
        for i in 0..self.tag_count {
            let end = u32_at(offsets, (i + 1) * 4) as usize;
            if end < prev || end > bytes.len() {
                return Err(SnapshotError::Corrupt("tag arena offsets not monotonic"));
            }
            let s = std::str::from_utf8(&bytes[prev..end])
                .map_err(|_| SnapshotError::BadUtf8)?;
            names.push(s.to_string());
            prev = end;
        }
        if u32_at(offsets, 0) != 0 || prev != bytes.len() {
            return Err(SnapshotError::Corrupt("tag arena does not cover its bytes"));
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// Typed (zero-copy) view — the mapped open path
// ---------------------------------------------------------------------

/// Cast one section to its element type. Sound because `T` is a plain
/// little-endian wire type (`u8`/`u32`/`u64`/`u128`/`DLabel`) whose
/// every bit pattern is valid; alignment is checked, not assumed.
#[cfg(target_endian = "little")]
fn cast_slice<T: Copy>(bytes: &[u8]) -> Result<&[T], SnapshotError> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(SnapshotError::Corrupt("section length not a multiple of element size"));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(SnapshotError::Corrupt("section not aligned for in-place access"));
    }
    // SAFETY: length and alignment checked; T is a plain POD wire type.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

/// The zero-copy typed view of a snapshot: every column as a borrowed
/// slice straight into the file bytes. Only constructible on
/// little-endian targets (the wire format *is* the in-memory format
/// there); big-endian callers go through [`decode`].
///
/// Validation here is deliberately O(header + directory): header
/// checksum, section structure, run-directory monotonicity, arena
/// offset tables, sorted-value-id range. Per-row content (permutation
/// indices, value ids) is covered by the footer checksum, which this
/// path does **not** stream — see the module docs for the trade-off.
#[cfg(target_endian = "little")]
#[derive(Debug)]
pub(crate) struct TypedView<'a> {
    pub num_tags: u32,
    pub digits: u32,
    pub doc_labels: LabelSection<'a>,
    pub doc_plabels: PlabelSection<'a>,
    pub doc_tags: TagSection<'a>,
    pub doc_value_ids: U32Section<'a>,
    pub sp_labels: LabelSection<'a>,
    pub sp_rows: U32Section<'a>,
    pub sp_values: U32Section<'a>,
    pub sp_keys: &'a [u128],
    pub sp_ends: &'a [u32],
    pub sd_labels: LabelSection<'a>,
    pub sd_rows: U32Section<'a>,
    pub sd_values: U32Section<'a>,
    pub sd_keys: &'a [u32],
    pub sd_ends: &'a [u32],
    pub value_offsets: &'a [u64],
    pub value_bytes: &'a [u8],
    pub value_sorted: &'a [u32],
    raw: RawView<'a>,
}

/// A label column section: raw in-place `DLabel` extents (v2, or v3
/// sections left raw) or the three packed FOR planes.
#[cfg(target_endian = "little")]
#[derive(Debug)]
pub(crate) enum LabelSection<'a> {
    Raw(&'a [DLabel]),
    Packed(LabelPlanesRef<'a>),
}

/// The document-order P-label section: raw `u128`s or a FOR plane of
/// indexes into the raw `SP_KEYS` dictionary.
#[cfg(target_endian = "little")]
#[derive(Debug)]
pub(crate) enum PlabelSection<'a> {
    Raw(&'a [u128]),
    Dict(PlaneRef<'a>),
}

/// The tag column section: raw `u32`s or a bit-packed plane.
#[cfg(target_endian = "little")]
#[derive(Debug)]
pub(crate) enum TagSection<'a> {
    Raw(&'a [u32]),
    Packed(BitpackRef<'a>),
}

/// A `u32` column section (value ids, permutation rows): raw or one
/// FOR plane.
#[cfg(target_endian = "little")]
#[derive(Debug)]
pub(crate) enum U32Section<'a> {
    Raw(&'a [u32]),
    Packed(PlaneRef<'a>),
}

#[cfg(target_endian = "little")]
impl LabelSection<'_> {
    /// Row count served by this section, whichever encoding it uses.
    /// (Exercised by the view tests; the store derives lengths from
    /// its own columns.)
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        match self {
            Self::Raw(s) => s.len(),
            Self::Packed(p) => p.len(),
        }
    }
}

#[cfg(target_endian = "little")]
impl<'a> TypedView<'a> {
    pub(crate) fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let raw = RawView::parse(bytes)?;
        let n = raw.record_count;
        // Per-section dispatch on the validated encoding descriptor.
        // Packed sections must be covered *exactly* by their planes —
        // trailing bytes inside a section are structural corruption.
        let exact = |used: usize, sec: &[u8]| -> Result<(), SnapshotError> {
            if used != sec.len() {
                return Err(SnapshotError::Corrupt("packed section length mismatch"));
            }
            Ok(())
        };
        let label_sec = |id: u32| -> Result<LabelSection<'a>, SnapshotError> {
            let sec = raw.section(id);
            if raw.enc(id) == ENC_RAW {
                Ok(LabelSection::Raw(cast_slice(sec)?))
            } else {
                let (planes, used) =
                    LabelPlanesRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
                exact(used, sec)?;
                Ok(LabelSection::Packed(planes))
            }
        };
        let u32_sec = |id: u32| -> Result<U32Section<'a>, SnapshotError> {
            let sec = raw.section(id);
            if raw.enc(id) == ENC_RAW {
                Ok(U32Section::Raw(cast_slice(sec)?))
            } else {
                let (plane, used) = PlaneRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
                exact(used, sec)?;
                Ok(U32Section::Packed(plane))
            }
        };
        let view = Self {
            num_tags: raw.num_tags,
            digits: raw.digits,
            doc_labels: label_sec(SEC_DOC_LABELS)?,
            doc_plabels: {
                let sec = raw.section(SEC_DOC_PLABELS);
                if raw.enc(SEC_DOC_PLABELS) == ENC_RAW {
                    PlabelSection::Raw(cast_slice(sec)?)
                } else {
                    let (plane, used) =
                        PlaneRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
                    exact(used, sec)?;
                    PlabelSection::Dict(plane)
                }
            },
            doc_tags: {
                let sec = raw.section(SEC_DOC_TAGS);
                if raw.enc(SEC_DOC_TAGS) == ENC_RAW {
                    TagSection::Raw(cast_slice(sec)?)
                } else {
                    let (plane, used) =
                        BitpackRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
                    exact(used, sec)?;
                    TagSection::Packed(plane)
                }
            },
            doc_value_ids: u32_sec(SEC_DOC_VALUE_IDS)?,
            sp_labels: label_sec(SEC_SP_LABELS)?,
            sp_rows: u32_sec(SEC_SP_ROWS)?,
            sp_values: u32_sec(SEC_SP_VALUES)?,
            sp_keys: cast_slice(raw.section(SEC_SP_KEYS))?,
            sp_ends: cast_slice(raw.section(SEC_SP_ENDS))?,
            sd_labels: label_sec(SEC_SD_LABELS)?,
            sd_rows: u32_sec(SEC_SD_ROWS)?,
            sd_values: u32_sec(SEC_SD_VALUES)?,
            sd_keys: cast_slice(raw.section(SEC_SD_KEYS))?,
            sd_ends: cast_slice(raw.section(SEC_SD_ENDS))?,
            value_offsets: cast_slice(raw.section(SEC_VALUE_OFFSETS))?,
            value_bytes: raw.section(SEC_VALUE_BYTES),
            value_sorted: cast_slice(raw.section(SEC_VALUE_SORTED))?,
            raw,
        };

        // Run directories: strictly ascending keys, strictly ascending
        // exclusive ends finishing at the row count — the invariants
        // every clustered scan's binary search relies on.
        check_directory(view.sp_ends, n, view.sp_keys.windows(2).all(|w| w[0] < w[1]))?;
        check_directory(view.sd_ends, n, view.sd_keys.windows(2).all(|w| w[0] < w[1]))?;
        // Value arena offsets: monotonic, covering the byte extent.
        let vo = view.value_offsets;
        if vo[0] != 0
            || vo.windows(2).any(|w| w[0] > w[1])
            || vo[vo.len() - 1] != view.value_bytes.len() as u64
        {
            return Err(SnapshotError::Corrupt("value arena offsets not monotonic"));
        }
        if view.value_sorted.iter().any(|&id| id as usize >= vo.len() - 1) {
            return Err(SnapshotError::Corrupt("sorted value id out of range"));
        }
        Ok(view)
    }

    /// The snapshot's tag table and domain parameters.
    pub(crate) fn meta(&self) -> Result<SnapshotMeta, SnapshotError> {
        Ok(SnapshotMeta {
            tag_names: self.raw.tag_names()?,
            num_tags: self.num_tags,
            digits: self.digits,
        })
    }

    /// Number of distinct interned values (the header count; needed to
    /// undo the value-id sentinel remap of packed value planes).
    pub(crate) fn value_count(&self) -> usize {
        self.raw.value_count
    }
}

#[cfg(target_endian = "little")]
fn check_directory(ends: &[u32], n: usize, keys_ascending: bool) -> Result<(), SnapshotError> {
    if !keys_ascending {
        return Err(SnapshotError::Corrupt("run directory keys not ascending"));
    }
    if ends.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::Corrupt("run directory ends not ascending"));
    }
    let covered = ends.last().map_or(0, |&e| e as usize);
    if covered != n || (n > 0) == ends.is_empty() {
        return Err(SnapshotError::Corrupt("run directory does not cover all rows"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Owned decoding
// ---------------------------------------------------------------------

/// Verify the footer checksum over the entire file. O(data); the
/// mapped open path skips this (see module docs), so callers that want
/// end-to-end integrity on mapped snapshots run it explicitly.
pub fn verify_checksum(bytes: &[u8]) -> Result<(), SnapshotError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(())
}

/// Deserialize and fully validate a snapshot into owned records —
/// including the footer checksum over every byte, per-record tag and
/// value-id validation, and UTF-8 checks. This is the defensive,
/// O(data) path; `NodeStore::from_mapped` is the O(1) one.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let raw = RawView::parse(bytes)?;
    verify_checksum(bytes)?;
    let tag_names = raw.tag_names()?;

    // Decode the value arena into owned strings.
    let offsets = raw.section(SEC_VALUE_OFFSETS);
    let arena = raw.section(SEC_VALUE_BYTES);
    let mut values: Vec<String> = Vec::with_capacity(raw.value_count.min(1 << 24));
    let mut prev = 0usize;
    for i in 0..raw.value_count {
        let end = usize::try_from(u64_at(offsets, (i + 1) * 8))
            .map_err(|_| SnapshotError::Corrupt("value arena offset overflow"))?;
        if end < prev || end > arena.len() {
            return Err(SnapshotError::Corrupt("value arena offsets not monotonic"));
        }
        let s = std::str::from_utf8(&arena[prev..end]).map_err(|_| SnapshotError::BadUtf8)?;
        values.push(s.to_string());
        prev = end;
    }
    if prev != arena.len() {
        return Err(SnapshotError::Corrupt("value arena does not cover its bytes"));
    }

    // Materialize records from the document-order columns, decoding
    // packed sections byte-wise — this path stays endian-portable.
    // The SP/SD sections are ignored except for the raw SP_KEYS
    // dictionary a dict-coded P-label column indexes into:
    // `NodeStore::from_records` rebuilds the clusterings, and the
    // bounds of those sections were already validated by the header
    // parse.
    let n = raw.record_count;
    let labels: Vec<DLabel> = {
        let sec = raw.section(SEC_DOC_LABELS);
        if raw.enc(SEC_DOC_LABELS) == ENC_RAW {
            (0..n)
                .map(|i| {
                    let lb = i * DLABEL_BYTES;
                    DLabel {
                        start: u32_at(sec, lb),
                        end: u32_at(sec, lb + 4),
                        level: u16::from_le_bytes(
                            sec[lb + 8..lb + 10].try_into().expect("2 bytes"),
                        ),
                    }
                })
                .collect()
        } else {
            let (planes, _) = LabelPlanesRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
            let starts = planes.starts.decode_all();
            let extents = planes.extents.decode_all();
            let levels = planes.levels.decode_all();
            (0..n)
                .map(|i| DLabel {
                    start: starts[i],
                    end: starts[i].wrapping_add(extents[i]),
                    level: levels[i] as u16,
                })
                .collect()
        }
    };
    let plabels: Vec<u128> = {
        let sec = raw.section(SEC_DOC_PLABELS);
        if raw.enc(SEC_DOC_PLABELS) == ENC_RAW {
            (0..n)
                .map(|i| {
                    u128::from_le_bytes(sec[i * 16..(i + 1) * 16].try_into().expect("16 bytes"))
                })
                .collect()
        } else {
            let keys = raw.section(SEC_SP_KEYS);
            let (plane, _) = PlaneRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
            let mut out = Vec::with_capacity(n);
            for idx in plane.decode_all() {
                let at = idx as usize * 16;
                if at + 16 > keys.len() {
                    return Err(SnapshotError::Corrupt("plabel dictionary index out of range"));
                }
                out.push(u128::from_le_bytes(keys[at..at + 16].try_into().expect("16 bytes")));
            }
            out
        }
    };
    let tags: Vec<u32> = {
        let sec = raw.section(SEC_DOC_TAGS);
        if raw.enc(SEC_DOC_TAGS) == ENC_RAW {
            (0..n).map(|i| u32_at(sec, i * 4)).collect()
        } else {
            let (plane, _) = BitpackRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
            plane.decode_all()
        }
    };
    let vids: Vec<u32> = {
        let sec = raw.section(SEC_DOC_VALUE_IDS);
        if raw.enc(SEC_DOC_VALUE_IDS) == ENC_RAW {
            (0..n).map(|i| u32_at(sec, i * 4)).collect()
        } else {
            let sentinel = raw.value_count as u32;
            let (plane, _) = PlaneRef::parse(sec, n).map_err(SnapshotError::Corrupt)?;
            plane
                .decode_all()
                .into_iter()
                .map(|v| if v == sentinel { NO_VALUE } else { v })
                .collect()
        }
    };
    let mut records = Vec::with_capacity(n.min(1 << 24));
    for i in 0..n {
        let tag = tags[i];
        if tag as usize >= tag_names.len() {
            return Err(SnapshotError::DanglingTag(tag));
        }
        let value_id = vids[i];
        let data = if value_id == NO_VALUE {
            None
        } else {
            Some(
                values
                    .get(value_id as usize)
                    .ok_or(SnapshotError::Corrupt("record value id out of range"))?
                    .clone(),
            )
        };
        records.push(NodeRecord {
            plabel: plabels[i],
            start: labels[i].start,
            end: labels[i].end,
            level: labels[i].level,
            tag: TagId(tag),
            data,
        });
    }

    Ok(Snapshot { records, tag_names, num_tags: raw.num_tags, digits: raw.digits })
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            records: vec![
                NodeRecord {
                    plabel: 42,
                    start: 0,
                    end: 5,
                    level: 1,
                    tag: TagId(0),
                    data: None,
                },
                NodeRecord {
                    plabel: u128::MAX / 3,
                    start: 1,
                    end: 4,
                    level: 2,
                    tag: TagId(1),
                    data: Some("héllo & <world>".to_string()),
                },
            ],
            tag_names: vec!["db".into(), "entry".into()],
            num_tags: 2,
            digits: 3,
        }
    }

    /// Recompute both checksums after a test mutated header bytes.
    fn rehash(bytes: &mut [u8]) {
        let sum = fnv1a(&bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        let tail = body;
        bytes[tail..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).unwrap(), snap);
        assert!(verify_checksum(&bytes).is_ok());
    }

    #[test]
    fn encode_store_round_trips_and_sections_are_aligned() {
        let snap = sample();
        let store = NodeStore::from_records(snap.records.clone());
        let bytes = encode_store(&store, &snap.tag_names, snap.num_tags, snap.digits);
        assert_eq!(bytes, encode(&snap), "both encoders emit identical files");
        assert_eq!(decode(&bytes).unwrap(), snap);
        // Every section offset in the table honors SECTION_ALIGN.
        for i in 0..SECTION_IDS.len() {
            let off = u64_at(&bytes, 64 + i * 24 + 8);
            assert_eq!(off % SECTION_ALIGN as u64, 0, "section {i}");
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot { records: vec![], tag_names: vec![], num_tags: 0, digits: 1 };
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode(&sample());
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xff;
        // Body corruption: the full decode path catches it…
        assert_eq!(decode(&bytes), Err(SnapshotError::ChecksumMismatch));
        assert_eq!(verify_checksum(&bytes), Err(SnapshotError::ChecksumMismatch));
        // …while header corruption is caught by the O(1) header check.
        let mut bytes = encode(&sample());
        bytes[30] ^= 0xff; // inside record_count
        assert_eq!(RawView::parse(&bytes).unwrap_err(), SnapshotError::ChecksumMismatch);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample());
        for cut in [0, 4, 100, HEADER_LEN - 1, HEADER_LEN + 8, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        rehash(&mut bytes);
        assert_eq!(decode(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn version_checked_including_v1_files() {
        let mut bytes = encode(&sample());
        bytes[8] = 99;
        rehash(&mut bytes);
        assert_eq!(decode(&bytes), Err(SnapshotError::BadVersion(99)));
        // A PR-1-era file: same magic, version 1 — rejected by number,
        // even though the rest of its layout is completely different.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode(&v1), Err(SnapshotError::BadVersion(1)));
    }

    #[test]
    fn dangling_tag_detected() {
        let mut snap = sample();
        snap.records[1].tag = TagId(9);
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes), Err(SnapshotError::DanglingTag(9)));
    }

    #[test]
    fn file_length_mismatch_detected() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(&[0u8; 16]); // trailing garbage
        assert_eq!(decode(&bytes), Err(SnapshotError::Corrupt("trailing bytes after footer")));
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn typed_view_serves_columns_in_place() {
        // Align the buffer the way MappedBytes would: copy into an
        // allocation aligned far beyond any column's requirement.
        let snap = sample();
        let bytes = encode(&snap);
        let mut aligned = aligned_copy(&bytes);
        {
            let view = TypedView::parse(&aligned).unwrap();
            assert_eq!(view.doc_labels.len(), snap.records.len());
            // The v3 encoder packs the document columns; decode a row
            // back through the plane views and check it survives.
            let (label0, plabel1) = match (&view.doc_labels, &view.doc_plabels) {
                (LabelSection::Packed(planes), PlabelSection::Dict(plane)) => (
                    DLabel {
                        start: planes.starts.get(0),
                        end: planes.starts.get(0).wrapping_add(planes.extents.get(0)),
                        level: planes.levels.get(0) as u16,
                    },
                    view.sp_keys[plane.get(1) as usize],
                ),
                other => panic!("v3 doc columns should be packed, got {other:?}"),
            };
            assert_eq!(label0, snap.records[0].dlabel());
            assert_eq!(plabel1, snap.records[1].plabel);
            assert!(matches!(view.doc_tags, TagSection::Packed(_)));
            assert!(matches!(view.sp_rows, U32Section::Packed(_)));
            assert_eq!(view.sp_keys.len(), view.sp_ends.len());
            assert_eq!(view.meta().unwrap().tag_names, snap.tag_names);
            assert_eq!(view.value_sorted.len(), 1);
        }
        // Corrupt a run directory: typed parse must refuse (after
        // fixing checksums, so structural validation is what trips).
        let off = {
            let raw = RawView::parse(&aligned).unwrap();
            let sec = raw.section(SEC_SP_ENDS);
            sec.as_ptr() as usize - aligned.as_ptr() as usize
        };
        aligned[off..off + 4].copy_from_slice(&999u32.to_le_bytes());
        let mut copy = aligned.clone();
        rehash(&mut copy);
        let aligned2 = aligned_copy(&copy);
        assert!(matches!(
            TypedView::parse(&aligned2).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn v2_encoder_still_writes_decodable_raw_files() {
        let snap = sample();
        let store = NodeStore::from_records(snap.records.clone());
        let bytes = encode_store_v2(&store, &snap.tag_names, snap.num_tags, snap.digits);
        assert_eq!(u32_at(&bytes, 8), 2, "legacy encoder stamps version 2");
        assert_eq!(decode(&bytes).unwrap(), snap);
        // Every encoding descriptor slot (table entry offset +4) is
        // zero, exactly as PR-3-era files wrote their padding.
        for i in 0..SECTION_IDS.len() {
            assert_eq!(u32_at(&bytes, 64 + i * 24 + 4), ENC_RAW, "section {i}");
        }
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn v2_typed_view_serves_raw_columns_in_place() {
        let snap = sample();
        let store = NodeStore::from_records(snap.records.clone());
        let bytes = encode_store_v2(&store, &snap.tag_names, snap.num_tags, snap.digits);
        let aligned = aligned_copy(&bytes);
        let view = TypedView::parse(&aligned).unwrap();
        match (&view.doc_labels, &view.doc_plabels, &view.doc_tags) {
            (LabelSection::Raw(labels), PlabelSection::Raw(plabels), TagSection::Raw(_)) => {
                assert_eq!(labels[0], snap.records[0].dlabel());
                assert_eq!(plabels[1], snap.records[1].plabel);
            }
            other => panic!("v2 sections must parse raw, got {other:?}"),
        }
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn corrupt_packed_section_yields_typed_error() {
        let snap = sample();
        let bytes = encode(&snap);
        // Clobber the first packed plane's block-width table entry to an
        // impossible width (>4): structural validation must trip with a
        // typed Corrupt, in both the mapped-parse and full-decode paths.
        let (off, enc) = {
            let raw = RawView::parse(&bytes).unwrap();
            let sec = raw.section(SEC_DOC_LABELS);
            (sec.as_ptr() as usize - bytes.as_ptr() as usize, raw.enc(SEC_DOC_LABELS))
        };
        assert_eq!(enc, ENC_LABELS);
        let mut evil = bytes.clone();
        evil[off + 8 + 8] = 9; // one block: widths table starts at 8 + 8*nb
        rehash(&mut evil);
        let aligned = aligned_copy(&evil);
        assert!(matches!(TypedView::parse(&aligned).unwrap_err(), SnapshotError::Corrupt(_)));
        assert!(matches!(decode(&evil).unwrap_err(), SnapshotError::Corrupt(_)));
    }

    #[cfg(target_endian = "little")]
    fn aligned_copy(bytes: &[u8]) -> AlignedBuf {
        let mut buf = AlignedBuf(vec![0u128; bytes.len().div_ceil(16)], bytes.len());
        buf.as_mut()[..bytes.len()].copy_from_slice(bytes);
        buf
    }

    /// A 16-byte-aligned byte buffer (u128 backing) for cast tests.
    #[cfg(target_endian = "little")]
    #[derive(Clone)]
    struct AlignedBuf(Vec<u128>, usize);

    #[cfg(target_endian = "little")]
    impl std::ops::Deref for AlignedBuf {
        type Target = [u8];
        fn deref(&self) -> &[u8] {
            // SAFETY: the u128 backing owns at least self.1 bytes.
            unsafe { std::slice::from_raw_parts(self.0.as_ptr().cast(), self.1) }
        }
    }

    #[cfg(target_endian = "little")]
    impl std::ops::DerefMut for AlignedBuf {
        fn deref_mut(&mut self) -> &mut [u8] {
            self.as_mut()
        }
    }

    #[cfg(target_endian = "little")]
    impl AlignedBuf {
        fn as_mut(&mut self) -> &mut [u8] {
            // SAFETY: as above, and we have &mut self.
            unsafe { std::slice::from_raw_parts_mut(self.0.as_mut_ptr().cast(), self.1) }
        }
    }
}
