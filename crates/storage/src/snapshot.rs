//! Binary snapshots of a labeled store: persist the index-generator
//! output (labels + data values + tag table + P-label domain
//! parameters) and load it back without reparsing or relabeling the
//! XML.
//!
//! The paper's system keeps the labeled form as the *primary*
//! representation — "The XML data is stored in labeled form, and
//! indexed" (abstract) — stored in DB2 tables or files for the twig
//! engine. This module is our file-format equivalent: a versioned,
//! checksummed, little-endian layout:
//!
//! ```text
//! magic "BLASSNAP"  version u32
//! num_tags u32  digits u32                  (P-label domain parameters)
//! tag_count u32  { len u32, utf8 bytes }*   (tag table, TagId order)
//! record_count u32
//!   { plabel u128, start u32, end u32, level u16, tag u32,
//!     has_data u8, [len u32, utf8 bytes] }*
//! fnv1a-64 checksum over everything above
//! ```
//!
//! Indexes are rebuilt on load — they are derived data, and rebuilding
//! keeps the format independent of B+ tree layout choices.

use crate::relation::{NodeRecord, NodeStore, RecordView};
use blas_xml::TagId;
use std::fmt;

const MAGIC: &[u8; 8] = b"BLASSNAP";
const VERSION: u32 = 1;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended early or a length field overran the buffer.
    Truncated,
    /// Checksum mismatch (corruption).
    ChecksumMismatch,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A record references a tag id outside the tag table.
    DanglingTag(u32),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a BLAS snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            Self::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            Self::DanglingTag(t) => write!(f, "record references unknown tag {t}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot: everything needed to rebuild a queryable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Tuples in start order.
    pub records: Vec<NodeRecord>,
    /// Tag names in `TagId` order.
    pub tag_names: Vec<String>,
    /// P-label domain: number of tags the domain was built for.
    pub num_tags: u32,
    /// P-label domain: digit count `H`.
    pub digits: u32,
}

/// Serialize a snapshot.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    encode_rows(
        snapshot.records.len(),
        snapshot.records.iter().map(|r| RecordView {
            plabel: r.plabel,
            start: r.start,
            end: r.end,
            level: r.level,
            tag: r.tag,
            data: r.data.as_deref(),
        }),
        &snapshot.tag_names,
        snapshot.num_tags,
        snapshot.digits,
    )
}

/// Serialize straight from a store's columns — no intermediate
/// [`NodeRecord`] materialization and no string clones; data values are
/// written from the store's intern pool.
pub fn encode_store(
    store: &NodeStore,
    tag_names: &[String],
    num_tags: u32,
    digits: u32,
) -> Vec<u8> {
    encode_rows(
        store.len(),
        store.scan_all().map(|(_, view)| view),
        tag_names,
        num_tags,
        digits,
    )
}

/// Shared encoder over zero-copy row views (the wire format of the
/// module docs).
fn encode_rows<'a>(
    record_count: usize,
    rows: impl Iterator<Item = RecordView<'a>>,
    tag_names: &[String],
    num_tags: u32,
    digits: u32,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + record_count * 48);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, num_tags);
    put_u32(&mut out, digits);
    put_u32(&mut out, tag_names.len() as u32);
    for name in tag_names {
        put_bytes(&mut out, name.as_bytes());
    }
    put_u32(&mut out, record_count as u32);
    for r in rows {
        out.extend_from_slice(&r.plabel.to_le_bytes());
        put_u32(&mut out, r.start);
        put_u32(&mut out, r.end);
        out.extend_from_slice(&r.level.to_le_bytes());
        put_u32(&mut out, r.tag.0);
        match r.data {
            Some(d) => {
                out.push(1);
                put_bytes(&mut out, d.as_bytes());
            }
            None => out.push(0),
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialize and validate a snapshot.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let num_tags = cur.u32()?;
    let digits = cur.u32()?;
    let tag_count = cur.u32()? as usize;
    let mut tag_names = Vec::with_capacity(tag_count.min(1 << 20));
    for _ in 0..tag_count {
        tag_names.push(cur.string()?);
    }
    let record_count = cur.u32()? as usize;
    let mut records = Vec::with_capacity(record_count.min(1 << 24));
    for _ in 0..record_count {
        let plabel = u128::from_le_bytes(cur.take(16)?.try_into().expect("16 bytes"));
        let start = cur.u32()?;
        let end = cur.u32()?;
        let level = u16::from_le_bytes(cur.take(2)?.try_into().expect("2 bytes"));
        let tag = cur.u32()?;
        if tag as usize >= tag_names.len() {
            return Err(SnapshotError::DanglingTag(tag));
        }
        let data = match cur.take(1)?[0] {
            0 => None,
            _ => Some(cur.string()?),
        };
        records.push(NodeRecord { plabel, start, end, level, tag: TagId(tag), data });
    }
    if cur.pos != body.len() {
        return Err(SnapshotError::Truncated);
    }
    Ok(Snapshot { records, tag_names, num_tags, digits })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            records: vec![
                NodeRecord {
                    plabel: 42,
                    start: 0,
                    end: 5,
                    level: 1,
                    tag: TagId(0),
                    data: None,
                },
                NodeRecord {
                    plabel: u128::MAX / 3,
                    start: 1,
                    end: 4,
                    level: 2,
                    tag: TagId(1),
                    data: Some("héllo & <world>".to_string()),
                },
            ],
            tag_names: vec!["db".into(), "entry".into()],
            num_tags: 2,
            digits: 3,
        }
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn encode_store_is_byte_identical_to_encode() {
        let snap = sample();
        let store = NodeStore::from_records(snap.records.clone());
        let from_records = encode(&snap);
        let from_store = encode_store(&store, &snap.tag_names, snap.num_tags, snap.digits);
        assert_eq!(from_records, from_store);
        assert_eq!(decode(&from_store).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot { records: vec![], tag_names: vec![], num_tags: 0, digits: 1 };
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(decode(&bytes), Err(SnapshotError::ChecksumMismatch));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample());
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        // Checksum now fails first unless we recompute; recompute it.
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn dangling_tag_detected() {
        let mut snap = sample();
        snap.records[1].tag = TagId(9);
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes), Err(SnapshotError::DanglingTag(9)));
    }

    #[test]
    fn version_checked() {
        let mut bytes = encode(&sample());
        bytes[8] = 99; // version little-endian low byte
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&bytes), Err(SnapshotError::BadVersion(99)));
    }
}
