//! The labeled-node relations of §4/§5.2.1 and their indexes.
//!
//! The paper stores one tuple `<plabel, start, end, level, data>` per
//! node in relation **SP** (clustered by `{plabel, start}`) and, for the
//! D-labeling baseline, the same tuples with a `tag` attribute in
//! relation **SD** (clustered by `{tag, start}`). Both relations carry
//! B+ tree indexes on the clustering key, on `start`, and on `data`.
//!
//! We keep the tuples once ([`NodeRecord`] carries *both* `plabel` and
//! `tag`) and expose the two clusterings as index-ordered scans. Every
//! scan yields tuples exactly as the corresponding clustered relation
//! would, so "elements visited" accounting is identical to having two
//! physical tables.

use crate::bptree::BPlusTree;
use blas_labeling::{DLabel, DocumentLabels};
use blas_xml::{Document, TagId};
use std::collections::BTreeMap;

/// Physical row identifier (position in the heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// Heap position.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One stored tuple: the paper's `<plabel, start, end, level, data>`
/// plus the `tag` attribute of the SD schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// P-label of the node (Def. 3.3).
    pub plabel: u128,
    /// D-label `start` — also the primary key.
    pub start: u32,
    /// D-label `end`.
    pub end: u32,
    /// D-label `level` (root = 1).
    pub level: u16,
    /// The node's tag (SD clustering attribute).
    pub tag: TagId,
    /// PCDATA value, if any.
    pub data: Option<String>,
}

impl NodeRecord {
    /// The D-label view of this tuple.
    #[inline]
    pub fn dlabel(&self) -> DLabel {
        DLabel { start: self.start, end: self.end, level: self.level }
    }
}

/// The indexed store for one labeled document.
#[derive(Debug)]
pub struct NodeStore {
    /// Heap of tuples in document (start) order: `RowId(i).index() == i`
    /// and `records[i].start` is increasing.
    records: Vec<NodeRecord>,
    /// SP clustering: B+ tree on `(plabel, start)`.
    sp_index: BPlusTree<(u128, u32), RowId>,
    /// SD clustering: B+ tree on `(tag, start)`.
    sd_index: BPlusTree<(u32, u32), RowId>,
    /// Index on `start` (the primary key).
    start_index: BPlusTree<u32, RowId>,
    /// Index on `data`: value → rows in start order.
    value_index: BTreeMap<String, Vec<RowId>>,
}

impl NodeStore {
    /// Build the store from a parsed document and its labels (the
    /// index-generator output of Fig. 6).
    pub fn build(doc: &Document, labels: &DocumentLabels) -> Self {
        let mut records: Vec<NodeRecord> = doc
            .node_ids()
            .map(|id| {
                let d = labels.dlabels[id.index()];
                NodeRecord {
                    plabel: labels.plabels[id.index()],
                    start: d.start,
                    end: d.end,
                    level: d.level,
                    tag: doc.node(id).tag,
                    data: doc.node(id).text.clone(),
                }
            })
            .collect();
        records.sort_unstable_by_key(|r| r.start);
        Self::from_records(records)
    }

    /// Build from pre-labeled records (tests and generators).
    pub fn from_records(records: Vec<NodeRecord>) -> Self {
        let mut sp_index = BPlusTree::new();
        let mut sd_index = BPlusTree::new();
        let mut start_index = BPlusTree::new();
        let mut value_index: BTreeMap<String, Vec<RowId>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            let row = RowId(i as u32);
            sp_index.insert((r.plabel, r.start), row);
            sd_index.insert((r.tag.0, r.start), row);
            start_index.insert(r.start, row);
            if let Some(data) = &r.data {
                value_index.entry(data.clone()).or_default().push(row);
            }
        }
        Self { records, sp_index, sd_index, start_index, value_index }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fetch one tuple by row id.
    #[inline]
    pub fn record(&self, row: RowId) -> &NodeRecord {
        &self.records[row.index()]
    }

    /// All tuples in start (document) order.
    pub fn scan_all(&self) -> impl Iterator<Item = (RowId, &NodeRecord)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// SP-clustered scan: all tuples with `p1 ≤ plabel ≤ p2`, ordered by
    /// `(plabel, start)`. This is the paper's range selection on
    /// P-labels.
    pub fn scan_plabel_range(
        &self,
        p1: u128,
        p2: u128,
    ) -> impl Iterator<Item = (RowId, &NodeRecord)> {
        self.sp_index
            .range(&(p1, 0), &(p2, u32::MAX))
            .map(move |(_, &row)| (row, self.record(row)))
    }

    /// SP-clustered equality scan (`plabel = p`), ordered by `start`.
    pub fn scan_plabel_eq(&self, p: u128) -> impl Iterator<Item = (RowId, &NodeRecord)> {
        self.scan_plabel_range(p, p)
    }

    /// SD-clustered scan: all tuples with the given tag, ordered by
    /// `start`. This is what the D-labeling baseline reads per query tag.
    pub fn scan_tag(&self, tag: TagId) -> impl Iterator<Item = (RowId, &NodeRecord)> {
        self.sd_index
            .range(&(tag.0, 0), &(tag.0, u32::MAX))
            .map(move |(_, &row)| (row, self.record(row)))
    }

    /// Point lookup on the primary key `start`.
    pub fn get_by_start(&self, start: u32) -> Option<(RowId, &NodeRecord)> {
        self.start_index
            .get(&start)
            .map(|&row| (row, self.record(row)))
    }

    /// Value-index lookup: rows whose `data` equals `value`, in start
    /// order.
    pub fn scan_value(&self, value: &str) -> impl Iterator<Item = (RowId, &NodeRecord)> {
        self.value_index
            .get(value)
            .into_iter()
            .flatten()
            .map(move |&row| (row, self.record(row)))
    }

    /// Height of the SP B+ tree (storage accounting).
    pub fn sp_index_height(&self) -> usize {
        self.sp_index.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_labeling::label_document;

    fn store(src: &str) -> (Document, NodeStore) {
        let doc = Document::parse(src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store)
    }

    const SAMPLE: &str = "<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>";

    #[test]
    fn build_creates_one_tuple_per_node() {
        let (doc, s) = store(SAMPLE);
        assert_eq!(s.len(), doc.len());
        // Heap is start-ordered.
        let starts: Vec<u32> = s.scan_all().map(|(_, r)| r.start).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scan_tag_returns_start_ordered_tag_matches() {
        let (doc, s) = store(SAMPLE);
        let n = doc.tags().get("n").unwrap();
        let rows: Vec<&NodeRecord> = s.scan_tag(n).map(|(_, r)| r).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].start < w[1].start));
        assert!(rows.iter().all(|r| r.tag == n));
    }

    #[test]
    fn scan_plabel_range_matches_suffix_query() {
        let (doc, s) = store(SAMPLE);
        let labels = label_document(&doc).unwrap();
        let e = doc.tags().get("e").unwrap();
        let n = doc.tags().get("n").unwrap();
        let q = labels.domain.path_interval(false, &[e, n]).unwrap();
        let data: Vec<&str> = s
            .scan_plabel_range(q.p1, q.p2)
            .map(|(_, r)| r.data.as_deref().unwrap())
            .collect();
        assert_eq!(data, ["a", "b"]); // not "c" (source path db/n)
    }

    #[test]
    fn value_index_finds_rows() {
        let (_, s) = store(SAMPLE);
        let rows: Vec<&NodeRecord> = s.scan_value("b").map(|(_, r)| r).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data.as_deref(), Some("b"));
        assert_eq!(s.scan_value("zzz").count(), 0);
    }

    #[test]
    fn get_by_start_roundtrip() {
        let (_, s) = store(SAMPLE);
        for (row, r) in s.scan_all() {
            let (row2, r2) = s.get_by_start(r.start).unwrap();
            assert_eq!(row, row2);
            assert_eq!(r, r2);
        }
        assert!(s.get_by_start(10_000).is_none());
    }

    #[test]
    fn dlabel_view_consistent() {
        let (_, s) = store(SAMPLE);
        for (_, r) in s.scan_all() {
            let d = r.dlabel();
            assert!(d.is_valid());
            assert_eq!(d.level, r.level);
        }
    }
}
