//! The labeled-node relations of §4/§5.2.1 as **physically clustered
//! columnar storage**.
//!
//! The paper stores one tuple `<plabel, start, end, level, data>` per
//! node in relation **SP** (clustered by `{plabel, start}`) and, for the
//! D-labeling baseline, the same tuples with a `tag` attribute in
//! relation **SD** (clustered by `{tag, start}`). Its whole performance
//! argument rests on those clusterings being *physical*: a P-label
//! range selection is one contiguous sequential read.
//!
//! # Layout
//!
//! [`NodeStore`] keeps the columns once in document (`start`) order —
//! [`DLabel`]s, P-labels, tags, interned data values — plus **two
//! physical permutations** of the label/value columns:
//!
//! ```text
//! document order (RowId):  labels[i], plabels[i], tags[i], value_ids[i]
//!
//! SP clustering:  sp_labels / sp_rows / sp_values   sorted by (plabel, start)
//!                 sp_keys/sp_ends: one (plabel, exclusive end position)
//!                 pair per distinct plabel, sorted by plabel — run i
//!                 covers positions sp_ends[i-1]..sp_ends[i]
//!
//! SD clustering:  sd_labels / sd_rows / sd_values   sorted by (tag, start)
//!                 sd_keys/sd_ends: the same flat run directory keyed
//!                 by tag
//! ```
//!
//! A **run** is the contiguous row range of one distinct clustering-key
//! value; inside a run, rows are `start`-ascending. Scans therefore
//! binary-search the run *directory* (a handful of entries) and return
//! [`ScanRun`]s over borrowed column extents:
//!
//! * [`NodeStore::scan_plabel_eq`] / [`NodeStore::scan_tag`] — exactly
//!   one run, already in document order;
//! * [`NodeStore::scan_plabel_range`] — the consecutive runs of every
//!   distinct P-label in `[p1, p2]` (the engine merges them back to
//!   document order with a ping-pong buffer merge).
//!
//! # Column sources: owned, mapped-raw, mapped-packed
//!
//! Every column is served from one of three sources. The in-memory
//! build paths ([`NodeStore::build`] / [`NodeStore::from_records`])
//! own plain `Vec`s. A mapped snapshot ([`NodeStore::from_mapped`])
//! borrows extents of the read-only file mapping — raw little-endian
//! slices for a v2 file, or the **packed encodings** of a v3 file
//! ([`crate::packed`]): D-label columns as three FOR planes, tags
//! bit-packed, document P-labels dictionary-coded against the SP run
//! keys, value ids and permutation rows as FOR planes. Scans are
//! source-agnostic: they return [`ScanRun::Raw`] over raw slices
//! (still zero-copy) or [`ScanRun::Packed`] over the planes, and the
//! engines — including the sharded parallel scan path built on
//! [`shard_runs`] — filter both shapes through the same chunked
//! kernels ([`crate::scan`]).
//!
//! There is **no per-tuple B+ tree traversal on the hot path**. The B+
//! trees are *derived* data, built lazily on first use (so a mapped
//! open stays O(1)) and retained for three colder purposes: the paper's
//! index accounting ([`NodeStore::sp_index_height`]), the `start`
//! primary-key reference lookup, and a reference scan path
//! ([`NodeStore::ref_scan_plabel_range`], [`NodeStore::ref_scan_tag`])
//! that the property tests and the `BENCH_storage.json` kernel bench
//! compare the columnar path against.
//!
//! PCDATA is interned: each distinct string is stored once in a value
//! table and rows carry a `u32` value id, so a `data = 'x'` filter over
//! a run is an integer compare over a contiguous value-id extent.
//! Value-id lookup ([`NodeStore::value_id`]) binary-searches
//! `value_sorted`, the permutation of value ids ordered by their
//! strings — which persists as just another column, keeping the mapped
//! path index-free.

use crate::bptree::BPlusTree;
use crate::delta::{DeltaEdits, DeltaError, DeltaStore};
use crate::mapped::MappedBytes;
use crate::packed::{BitpackCol, LabelPlanesCol, PlaneCol};
use crate::scan::{PackedRun, RunLike, ScanRun};
use crate::snapshot::{self, SnapshotError, SnapshotMeta};
use blas_labeling::{DLabel, DocumentLabels};
use blas_xml::{Document, TagId};
use std::collections::BTreeMap;
use std::ops::{Deref, Range};
use std::sync::{Arc, OnceLock};

/// Physical row identifier (position in the document-order columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// Column position.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel value id for rows without PCDATA.
pub const NO_VALUE: u32 = u32::MAX;

/// One column, from either source: owned by the store, or a borrowed
/// extent of the read-only mapping the store keeps alive.
///
/// The `Mapped` variant stores raw slice parts instead of a `&[T]`
/// because the referent is a sibling field (the [`MappedBytes`] in
/// [`NodeStore::source`]); the buffer address is stable for the
/// store's lifetime (mmap regions and page-aligned heap reads are
/// never moved, mutated, or freed before drop), which is what makes
/// reconstructing the slice in [`Col::deref`] sound.
pub(crate) enum Col<T: 'static> {
    Owned(Vec<T>),
    Mapped { ptr: *const T, len: usize },
}

// SAFETY: a mapped column is an immutable view of immutable bytes; the
// raw pointer is only ever read, so sharing follows `&[T]` rules.
unsafe impl<T: Send> Send for Col<T> {}
unsafe impl<T: Sync> Sync for Col<T> {}

impl<T> Col<T> {
    /// Capture a mapped extent as raw parts (see type-level safety
    /// argument).
    pub(crate) fn from_mapped_slice(s: &[T]) -> Self {
        Col::Mapped { ptr: s.as_ptr(), len: s.len() }
    }
}

impl<T> Deref for Col<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Col::Owned(v) => v,
            // SAFETY: ptr/len came from a live slice of the mapping the
            // owning store keeps alive and never mutates.
            Col::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Col[{}; {}]", if matches!(self, Col::Owned(_)) { "owned" } else { "mapped" }, self.len())
    }
}

/// A D-label column: raw [`Col`] extents, or the three FOR planes
/// (`start`, `end − start`, `level`) of a packed v3 snapshot section.
// A handful of these live per store (not per row), so the size skew
// between the variants is irrelevant and boxing would only add a
// pointer chase to every scan.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum LabelColumn {
    Raw(Col<DLabel>),
    Packed(LabelPlanesCol),
}

impl LabelColumn {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Self::Raw(c) => c.len(),
            Self::Packed(p) => p.len(),
        }
    }

    /// Label at position `i` (O(1) block-decoded point read when
    /// packed).
    #[inline]
    fn get(&self, i: usize) -> DLabel {
        match self {
            Self::Raw(c) => c[i],
            Self::Packed(p) => {
                let start = p.starts.as_ref().get(i);
                DLabel {
                    start,
                    end: start.wrapping_add(p.extents.as_ref().get(i)),
                    level: p.levels.as_ref().get(i) as u16,
                }
            }
        }
    }

    /// The whole column, owned (a full plane decode when packed).
    fn to_vec(&self) -> Vec<DLabel> {
        match self {
            Self::Raw(c) => c.to_vec(),
            Self::Packed(p) => {
                let r = p.as_ref();
                let starts = r.starts.decode_all();
                let extents = r.extents.decode_all();
                let levels = r.levels.decode_all();
                (0..starts.len())
                    .map(|i| DLabel {
                        start: starts[i],
                        end: starts[i].wrapping_add(extents[i]),
                        level: levels[i] as u16,
                    })
                    .collect()
            }
        }
    }

    /// Position of the label with this `start`, by binary search over
    /// the start-ordered column (O(log n) point reads when packed).
    fn search_start(&self, start: u32) -> Option<usize> {
        match self {
            Self::Raw(c) => c.binary_search_by(|l| l.start.cmp(&start)).ok(),
            Self::Packed(p) => {
                let plane = p.starts.as_ref();
                let (mut lo, mut hi) = (0usize, plane.len());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if plane.get(mid) < start {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                (lo < plane.len() && plane.get(lo) == start).then_some(lo)
            }
        }
    }
}

/// The document-order P-label column: raw `u128`s, or a FOR plane of
/// indexes into the store's `sp_keys` run directory (which lists every
/// distinct P-label). Resolved by `NodeStore::plabel_at`.
#[derive(Debug)]
pub(crate) enum PlabelColumn {
    Raw(Col<u128>),
    Dict(PlaneCol),
}

/// The tag column: raw `u32`s or a bit-packed plane.
#[derive(Debug)]
pub(crate) enum TagColumn {
    Raw(Col<u32>),
    Packed(BitpackCol),
}

impl TagColumn {
    #[inline]
    fn get(&self, i: usize) -> u32 {
        match self {
            Self::Raw(c) => c[i],
            Self::Packed(b) => b.as_ref().get(i),
        }
    }

    fn to_vec(&self) -> Vec<u32> {
        match self {
            Self::Raw(c) => c.to_vec(),
            Self::Packed(b) => b.as_ref().decode_all(),
        }
    }
}

/// A `u32` column (value ids, permutation rows): raw, or one FOR
/// plane. `sentinel` is the on-disk stand-in for [`NO_VALUE`]
/// (`value_count` for value-id columns, so FOR blocks stay narrow;
/// `u32::MAX` itself — a no-op — for row permutations). Point reads
/// remap it back; the scan kernels compare against plane values
/// directly and never need the remap (see [`crate::scan`]).
#[derive(Debug)]
pub(crate) enum U32Column {
    Raw(Col<u32>),
    Packed { plane: PlaneCol, sentinel: u32 },
}

impl U32Column {
    #[inline]
    fn get(&self, i: usize) -> u32 {
        match self {
            Self::Raw(c) => c[i],
            Self::Packed { plane, sentinel } => {
                let v = plane.as_ref().get(i);
                if v == *sentinel { NO_VALUE } else { v }
            }
        }
    }

    fn to_vec(&self) -> Vec<u32> {
        match self {
            Self::Raw(c) => c.to_vec(),
            Self::Packed { plane, sentinel } => plane
                .as_ref()
                .decode_all()
                .into_iter()
                .map(|v| if v == *sentinel { NO_VALUE } else { v })
                .collect(),
        }
    }
}

/// The interned-PCDATA table, from either source: owned strings, or
/// the snapshot's string arena (an offsets column into a byte column)
/// served in place.
#[derive(Debug)]
pub(crate) enum StrTable {
    Owned(Vec<String>),
    /// `offsets.len() == count + 1`; string `i` is
    /// `bytes[offsets[i]..offsets[i+1]]`. Offsets are validated
    /// monotonic and in-bounds when the snapshot is opened; UTF-8 is
    /// checked per access (each string once per read, not the whole
    /// arena up front).
    Mapped { offsets: Col<u64>, bytes: Col<u8> },
}

impl StrTable {
    fn len(&self) -> usize {
        match self {
            StrTable::Owned(v) => v.len(),
            StrTable::Mapped { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    /// String `i`, or `None` when `i` is out of range (or, for a mapped
    /// arena that escaped checksum verification, not valid UTF-8 —
    /// treated as absent rather than a panic).
    fn get(&self, i: usize) -> Option<&str> {
        match self {
            StrTable::Owned(v) => v.get(i).map(String::as_str),
            StrTable::Mapped { offsets, bytes } => {
                let from = *offsets.get(i)? as usize;
                let to = *offsets.get(i + 1)? as usize;
                std::str::from_utf8(bytes.get(from..to)?).ok()
            }
        }
    }
}

/// One tuple in owned form: the paper's `<plabel, start, end, level,
/// data>` plus the `tag` attribute of the SD schema. Used at API
/// boundaries (store construction, snapshot decoding, tests); the
/// store itself holds columns, not records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// P-label of the node (Def. 3.3).
    pub plabel: u128,
    /// D-label `start` — also the primary key.
    pub start: u32,
    /// D-label `end`.
    pub end: u32,
    /// D-label `level` (root = 1).
    pub level: u16,
    /// The node's tag (SD clustering attribute).
    pub tag: TagId,
    /// PCDATA value, if any.
    pub data: Option<String>,
}

impl NodeRecord {
    /// The D-label view of this tuple.
    #[inline]
    pub fn dlabel(&self) -> DLabel {
        DLabel { start: self.start, end: self.end, level: self.level }
    }
}

/// Zero-copy view of one stored tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// P-label of the node.
    pub plabel: u128,
    /// D-label `start`.
    pub start: u32,
    /// D-label `end`.
    pub end: u32,
    /// D-label `level`.
    pub level: u16,
    /// The node's tag.
    pub tag: TagId,
    /// PCDATA value, borrowed from the store's intern table.
    pub data: Option<&'a str>,
}

impl<'a> RecordView<'a> {
    /// The D-label view of this tuple.
    #[inline]
    pub fn dlabel(&self) -> DLabel {
        DLabel { start: self.start, end: self.end, level: self.level }
    }

    /// Clone into an owned record.
    pub fn to_owned(&self) -> NodeRecord {
        NodeRecord {
            plabel: self.plabel,
            start: self.start,
            end: self.end,
            level: self.level,
            tag: self.tag,
            data: self.data.map(str::to_string),
        }
    }
}

/// One contiguous clustered run over **raw** column extents: parallel
/// `labels` / `rows` / `value_ids` slices, `start`-ascending. Packed
/// sources produce [`crate::scan::PackedRun`] instead; scans return
/// both shapes behind [`ScanRun`].
///
/// `rows` is either parallel to `labels` (SP/SD runs: the permuted
/// document-order row of each position) or empty, which signals the
/// **identity-plus-offset** mapping (document-order runs from
/// [`NodeStore::scan_doc`], where position `i` is row `row_base + i`;
/// `row_base` is non-zero only for slices produced by [`Run::slice`]).
/// Use [`Run::row_at`] to resolve positions uniformly instead of
/// zipping `rows` directly.
#[derive(Debug, Clone, Copy)]
pub struct Run<'a> {
    /// D-labels of the run, in document order.
    pub labels: &'a [DLabel],
    /// Document-order row per run position, or empty for identity.
    pub rows: &'a [u32],
    /// Interned value id ([`NO_VALUE`] for no PCDATA) per run position.
    pub value_ids: &'a [u32],
    /// Row offset of position 0 when `rows` is the identity mapping.
    pub row_base: u32,
}

impl<'a> Run<'a> {
    /// Tuples in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the run holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Document-order row of run position `i`, resolving the empty
    /// `rows` slice as the identity(-plus-offset) mapping.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        debug_assert!(i < self.labels.len());
        if self.rows.is_empty() {
            RowId(self.row_base + i as u32)
        } else {
            RowId(self.rows[i])
        }
    }

    /// The contiguous sub-run of positions `range`. Slices stay
    /// `start`-ascending (they are consecutive positions of a sorted
    /// run), which is the invariant shard splitting relies on.
    pub fn slice(&self, range: Range<usize>) -> Run<'a> {
        Run {
            labels: &self.labels[range.clone()],
            rows: if self.rows.is_empty() { &[] } else { &self.rows[range.clone()] },
            value_ids: &self.value_ids[range.clone()],
            row_base: if self.rows.is_empty() {
                self.row_base + range.start as u32
            } else {
                0
            },
        }
    }

    pub(crate) const EMPTY: Run<'static> =
        Run { labels: &[], rows: &[], value_ids: &[], row_base: 0 };
}

/// Partition a scan's runs into at most `shards` balanced groups for
/// parallel execution, **splitting oversized runs** into consecutive
/// [`RunLike::slice`] pieces so no group exceeds ⌈total ∕ shards⌉
/// tuples. Generic over the run shape, so raw [`Run`]s and packed
/// [`ScanRun`]s shard through the same splitter.
///
/// Pieces appear in the same order as the input runs and exactly
/// partition them (every tuple lands in exactly one piece of one
/// group — the invariant that makes per-shard `elements_visited`
/// accumulators sum to the sequential count). Empty runs are dropped;
/// the result may hold fewer than `shards` groups, and each group is
/// non-empty.
pub fn shard_runs<R: RunLike>(runs: Vec<R>, shards: usize) -> Vec<Vec<R>> {
    let total: usize = runs.iter().map(R::len).sum();
    if total == 0 {
        return Vec::new();
    }
    if shards <= 1 {
        return vec![runs.into_iter().filter(|r| !r.is_empty()).collect()];
    }
    let target = total.div_ceil(shards);
    let mut groups: Vec<Vec<R>> = Vec::with_capacity(shards);
    let mut current: Vec<R> = Vec::new();
    let mut filled = 0usize;
    for run in runs {
        let mut offset = 0usize;
        while offset < run.len() {
            let room = target - filled;
            let take = room.min(run.len() - offset);
            current.push(run.slice(offset..offset + take));
            offset += take;
            filled += take;
            if filled == target {
                groups.push(std::mem::take(&mut current));
                filled = 0;
            }
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    debug_assert!(groups.len() <= shards);
    debug_assert_eq!(
        groups.iter().flatten().map(R::len).sum::<usize>(),
        total,
        "shard groups must exactly partition the scan"
    );
    groups
}

// --- base ⊎ delta merge machinery ----------------------------------
//
// A delta-touched key run is assembled from three start-ordered
// inputs: the base run, the delta's inserted sub-run for the same
// key, and the starts of the key's tombstoned base tuples. Live
// starts are globally unique (an insert may only reuse a tombstoned
// start), so the merge is a deterministic splice: cut the tombstones
// out of the base run, then interleave maximal insert stretches
// between the surviving pieces. The result is a [`ScanRun::Multi`]
// whose pieces still borrow the underlying columns — no tuple is
// copied at merge time.

/// First position `>= from` in the start-ordered `run` whose start is
/// `>= start` (binary search over [`ScanRun::label_at`]).
fn lower_bound_start(run: &ScanRun<'_>, from: usize, start: u32) -> usize {
    let (mut lo, mut hi) = (from, run.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if run.label_at(mid).start < start {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Cut the tombstoned elements out of `base`: each maximal live
/// stretch becomes one piece of `out`. `dels` holds the tombstones'
/// starts, ascending; every one must occur in `base` (tombstone
/// views carry the *base* key of each deleted row, so a tombstone
/// always lands in the run it was clustered into).
fn split_out_deleted<'a>(base: ScanRun<'a>, dels: &[u32], out: &mut Vec<ScanRun<'a>>) {
    if dels.is_empty() {
        if !base.is_empty() {
            out.push(base);
        }
        return;
    }
    let mut cur = 0usize;
    for &s in dels {
        let p = lower_bound_start(&base, cur, s);
        debug_assert!(
            p < base.len() && base.label_at(p).start == s,
            "tombstone start must exist in its base run"
        );
        if p > cur {
            out.push(base.slice(cur..p));
        }
        cur = p + 1;
    }
    if cur < base.len() {
        out.push(base.slice(cur..base.len()));
    }
}

/// Interleave the delta's inserted elements (`dins`, start-ordered)
/// between the live base `pieces`, preserving global start order.
fn interleave_inserts<'a>(pieces: Vec<ScanRun<'a>>, dins: Run<'a>) -> Vec<ScanRun<'a>> {
    let dn = dins.labels.len();
    if dn == 0 {
        return pieces;
    }
    let mut out = Vec::with_capacity(pieces.len() + 1);
    let mut di = 0usize;
    for piece in pieces {
        let plen = piece.len();
        let last = piece.label_at(plen - 1).start;
        let mut cur = 0usize;
        while di < dn && dins.labels[di].start < last {
            let bound = lower_bound_start(&piece, cur, dins.labels[di].start);
            let bstart = piece.label_at(bound).start;
            let dj = di + dins.labels[di..].partition_point(|l| l.start < bstart);
            if bound > cur {
                out.push(piece.slice(cur..bound));
            }
            out.push(ScanRun::Raw(dins.slice(di..dj)));
            cur = bound;
            di = dj;
        }
        if cur == 0 {
            out.push(piece);
        } else {
            out.push(piece.slice(cur..plen));
        }
    }
    if di < dn {
        out.push(ScanRun::Raw(dins.slice(di..dn)));
    }
    out
}

/// Merge one base key run with the delta's inserts and tombstone
/// starts for the same key into one logical start-ordered run.
fn merge_key_run<'a>(base: ScanRun<'a>, dins: Run<'a>, dels: &[u32]) -> ScanRun<'a> {
    let mut pieces = Vec::new();
    split_out_deleted(base, dels, &mut pieces);
    ScanRun::multi(interleave_inserts(pieces, dins))
}

/// Unnest [`ScanRun::Multi`] wrappers so shard splitting (and the
/// engines' per-run loops) only ever slice flat runs.
fn flatten_merged(runs: Vec<ScanRun<'_>>) -> Vec<ScanRun<'_>> {
    if runs.iter().all(|r| !matches!(r, ScanRun::Multi(_))) {
        return runs;
    }
    let mut out = Vec::with_capacity(runs.len());
    for r in runs {
        match r {
            ScanRun::Multi(pieces) => out.extend(pieces),
            other => out.push(other),
        }
    }
    out
}

/// Two-source iterator that keeps [`NodeStore::scan_plabel_range`]'s
/// common no-delta path allocation-free.
enum EitherIter<A, B> {
    A(A),
    B(B),
}

impl<T, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator for EitherIter<A, B> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::A(a) => a.next(),
            EitherIter::B(b) => b.next(),
        }
    }
}

/// The derived B+ tree indexes, built lazily from the columns on first
/// use. Keeping them out of the construction path is what lets a
/// mapped snapshot open in O(1): nothing here is needed by the
/// clustered-scan hot paths.
#[derive(Debug)]
struct RefIndexes {
    sp: BPlusTree<(u128, u32), RowId>,
    sd: BPlusTree<(u32, u32), RowId>,
    start: BPlusTree<u32, RowId>,
}

/// The immutable column set behind one [`NodeStore`]: every physical
/// column of both clusterings plus the lazily derived reference
/// indexes. Generations of a mutating database share one `StoreCols`
/// behind an `Arc` (cloning a store never copies a column); all
/// behavior lives on [`NodeStore`], which derefs here — this type is
/// public only so that deref is nameable, and carries no methods.
#[doc(hidden)]
#[derive(Debug)]
pub struct StoreCols {
    // --- document-order columns (RowId = position) -----------------
    pub(crate) labels: LabelColumn,
    pub(crate) plabels: PlabelColumn,
    pub(crate) tags: TagColumn,
    pub(crate) value_ids: U32Column,
    /// Interned PCDATA table; `value_ids` index into it.
    pub(crate) values: StrTable,
    /// Value ids ordered by their strings (the persistent, mapping-
    /// friendly replacement for a value B-tree): `value_id` lookup is
    /// a binary search over this column.
    pub(crate) value_sorted: Col<u32>,

    // --- SP clustering: permutation sorted by (plabel, start) ------
    pub(crate) sp_labels: LabelColumn,
    pub(crate) sp_rows: U32Column,
    pub(crate) sp_values: U32Column,
    /// Run directory: distinct plabels, ascending. Always raw — it is
    /// tiny, and it doubles as the dictionary of the packed P-label
    /// column.
    pub(crate) sp_keys: Col<u128>,
    /// Exclusive end position of each run; run `i` covers
    /// `sp_ends[i-1]..sp_ends[i]` (0-based start for `i == 0`).
    pub(crate) sp_ends: Col<u32>,

    // --- SD clustering: permutation sorted by (tag, start) ---------
    pub(crate) sd_labels: LabelColumn,
    pub(crate) sd_rows: U32Column,
    pub(crate) sd_values: U32Column,
    pub(crate) sd_keys: Col<u32>,
    pub(crate) sd_ends: Col<u32>,

    // --- lazily derived B+ tree indexes (reference/accounting) -----
    ref_indexes: OnceLock<RefIndexes>,
    /// Keep-alive for the mapping the `Col::Mapped` columns point into.
    #[allow(dead_code)]
    source: Option<MappedBytes>,
}

/// The columnar, doubly clustered store for one labeled document.
///
/// Built three ways: from a parsed document ([`NodeStore::build`]),
/// from owned records ([`NodeStore::from_records`]), or directly over
/// a read-only snapshot mapping ([`NodeStore::from_mapped`]) — the
/// zero-decode path, which serves v3 files through their packed
/// column encodings. Scans behave identically across all of them.
///
/// A store is a cheap handle: the immutable columns live in a shared
/// [`StoreCols`] behind an `Arc`, optionally layered with a
/// [`DeltaStore`] of mutations ([`NodeStore::apply_edits`]). Scans on
/// a delta-carrying store transparently splice base and delta at the
/// run level (tombstoned base rows are cut out, inserted tuples are
/// interleaved in start order), so everything above the scan layer —
/// all three engines, sequential and pooled — sees base ⊎ delta
/// without knowing deltas exist. A store without a delta pays one
/// `Option` check per scan and keeps every zero-copy path.
#[derive(Debug, Clone)]
pub struct NodeStore {
    cols: Arc<StoreCols>,
    delta: Option<Arc<DeltaStore>>,
}

impl Deref for NodeStore {
    type Target = StoreCols;
    #[inline]
    fn deref(&self) -> &StoreCols {
        &self.cols
    }
}

/// The mapped columns of one snapshot, produced inside
/// [`NodeStore::from_mapped`] while the parse borrow is live and then
/// married to the mapping itself.
struct MappedCols {
    labels: LabelColumn,
    plabels: PlabelColumn,
    tags: TagColumn,
    value_ids: U32Column,
    values: StrTable,
    value_sorted: Col<u32>,
    sp_labels: LabelColumn,
    sp_rows: U32Column,
    sp_values: U32Column,
    sp_keys: Col<u128>,
    sp_ends: Col<u32>,
    sd_labels: LabelColumn,
    sd_rows: U32Column,
    sd_values: U32Column,
    sd_keys: Col<u32>,
    sd_ends: Col<u32>,
}

impl NodeStore {
    /// Build the store from a parsed document and its labels (the
    /// index-generator output of Fig. 6).
    pub fn build(doc: &Document, labels: &DocumentLabels) -> Self {
        let mut order: Vec<u32> = (0..doc.len() as u32).collect();
        order.sort_unstable_by_key(|&i| labels.dlabels[i as usize].start);
        let mut columns = Columns::with_capacity(doc.len());
        for &i in &order {
            let id = blas_xml::NodeId(i);
            columns.push(
                labels.plabels[i as usize],
                labels.dlabels[i as usize],
                doc.node(id).tag,
                doc.node(id).text.as_deref(),
            );
        }
        Self::from_columns(columns)
    }

    /// Build from pre-labeled records (tests, generators, snapshot
    /// restore). Consumes the records; data strings are interned, not
    /// cloned.
    pub fn from_records(mut records: Vec<NodeRecord>) -> Self {
        records.sort_unstable_by_key(|r| r.start);
        let mut columns = Columns::with_capacity(records.len());
        for r in records {
            let d = DLabel { start: r.start, end: r.end, level: r.level };
            columns.push_owned(r.plabel, d, r.tag, r.data);
        }
        Self::from_columns(columns)
    }

    /// Open a store **directly over a snapshot mapping** with zero
    /// upfront decode: every column — both clusterings, both run
    /// directories, the string arena — is served in place from the
    /// file's sectioned extents, raw (v2) or packed (v3). Validation
    /// is O(header + directory), not O(data); see [`crate::snapshot`]
    /// for what is (and is not) checked on this path.
    ///
    /// Returns the store plus the snapshot's metadata (tag table and
    /// P-label domain parameters), which the caller needs to bind
    /// queries.
    ///
    /// On big-endian targets the sectioned little-endian extents cannot
    /// be served in place; this falls back to a full decode into owned
    /// columns (correct, but O(data) like [`NodeStore::from_records`]).
    pub fn from_mapped(source: MappedBytes) -> Result<(Self, SnapshotMeta), SnapshotError> {
        #[cfg(target_endian = "little")]
        {
            use crate::snapshot::{LabelSection, PlabelSection, TagSection, U32Section};
            let (cols, meta) = {
                let view = snapshot::TypedView::parse(&source)?;
                let meta = view.meta()?;
                let vid_sentinel = view.value_count() as u32;
                let label_col = |s: &LabelSection<'_>| match *s {
                    LabelSection::Raw(sl) => LabelColumn::Raw(Col::from_mapped_slice(sl)),
                    LabelSection::Packed(p) => LabelColumn::Packed(LabelPlanesCol::from_ref(p)),
                };
                let u32_col = |s: &U32Section<'_>, sentinel: u32| match *s {
                    U32Section::Raw(sl) => U32Column::Raw(Col::from_mapped_slice(sl)),
                    U32Section::Packed(p) => {
                        U32Column::Packed { plane: PlaneCol::from_ref(p), sentinel }
                    }
                };
                let cols = MappedCols {
                    labels: label_col(&view.doc_labels),
                    plabels: match view.doc_plabels {
                        PlabelSection::Raw(sl) => PlabelColumn::Raw(Col::from_mapped_slice(sl)),
                        PlabelSection::Dict(p) => PlabelColumn::Dict(PlaneCol::from_ref(p)),
                    },
                    tags: match view.doc_tags {
                        TagSection::Raw(sl) => TagColumn::Raw(Col::from_mapped_slice(sl)),
                        TagSection::Packed(p) => TagColumn::Packed(BitpackCol::from_ref(p)),
                    },
                    value_ids: u32_col(&view.doc_value_ids, vid_sentinel),
                    values: StrTable::Mapped {
                        offsets: Col::from_mapped_slice(view.value_offsets),
                        bytes: Col::from_mapped_slice(view.value_bytes),
                    },
                    value_sorted: Col::from_mapped_slice(view.value_sorted),
                    sp_labels: label_col(&view.sp_labels),
                    sp_rows: u32_col(&view.sp_rows, NO_VALUE),
                    sp_values: u32_col(&view.sp_values, vid_sentinel),
                    sp_keys: Col::from_mapped_slice(view.sp_keys),
                    sp_ends: Col::from_mapped_slice(view.sp_ends),
                    sd_labels: label_col(&view.sd_labels),
                    sd_rows: u32_col(&view.sd_rows, NO_VALUE),
                    sd_values: u32_col(&view.sd_values, vid_sentinel),
                    sd_keys: Col::from_mapped_slice(view.sd_keys),
                    sd_ends: Col::from_mapped_slice(view.sd_ends),
                };
                (cols, meta)
            };
            let store = Self::from_cols(StoreCols {
                labels: cols.labels,
                plabels: cols.plabels,
                tags: cols.tags,
                value_ids: cols.value_ids,
                values: cols.values,
                value_sorted: cols.value_sorted,
                sp_labels: cols.sp_labels,
                sp_rows: cols.sp_rows,
                sp_values: cols.sp_values,
                sp_keys: cols.sp_keys,
                sp_ends: cols.sp_ends,
                sd_labels: cols.sd_labels,
                sd_rows: cols.sd_rows,
                sd_values: cols.sd_values,
                sd_keys: cols.sd_keys,
                sd_ends: cols.sd_ends,
                ref_indexes: OnceLock::new(),
                source: Some(source),
            });
            Ok((store, meta))
        }
        #[cfg(not(target_endian = "little"))]
        {
            // Portable fallback: decode the little-endian snapshot into
            // owned, native-endian columns.
            let snap = snapshot::decode(&source)?;
            let meta = SnapshotMeta {
                tag_names: snap.tag_names.clone(),
                num_tags: snap.num_tags,
                digits: snap.digits,
            };
            Ok((Self::from_records(snap.records), meta))
        }
    }

    fn from_columns(columns: Columns) -> Self {
        let Columns { labels, plabels, tags, value_ids, values, intern } = columns;
        let n = labels.len();

        // SP permutation: stable clustering by plabel keeps the
        // start-ascending document order inside each run.
        let mut sp_perm: Vec<u32> = (0..n as u32).collect();
        sp_perm.sort_unstable_by_key(|&i| (plabels[i as usize], labels[i as usize].start));
        let sp_labels: Vec<DLabel> = sp_perm.iter().map(|&i| labels[i as usize]).collect();
        let sp_values: Vec<u32> = sp_perm.iter().map(|&i| value_ids[i as usize]).collect();
        let mut sp_keys: Vec<u128> = Vec::new();
        let mut sp_ends: Vec<u32> = Vec::new();
        for (pos, &row) in sp_perm.iter().enumerate() {
            let p = plabels[row as usize];
            match sp_keys.last() {
                Some(&last) if last == p => *sp_ends.last_mut().expect("parallel") = pos as u32 + 1,
                _ => {
                    sp_keys.push(p);
                    sp_ends.push(pos as u32 + 1);
                }
            }
        }

        // SD permutation, same construction keyed by tag.
        let mut sd_perm: Vec<u32> = (0..n as u32).collect();
        sd_perm.sort_unstable_by_key(|&i| (tags[i as usize], labels[i as usize].start));
        let sd_labels: Vec<DLabel> = sd_perm.iter().map(|&i| labels[i as usize]).collect();
        let sd_values: Vec<u32> = sd_perm.iter().map(|&i| value_ids[i as usize]).collect();
        let mut sd_keys: Vec<u32> = Vec::new();
        let mut sd_ends: Vec<u32> = Vec::new();
        for (pos, &row) in sd_perm.iter().enumerate() {
            let t = tags[row as usize];
            match sd_keys.last() {
                Some(&last) if last == t => *sd_ends.last_mut().expect("parallel") = pos as u32 + 1,
                _ => {
                    sd_keys.push(t);
                    sd_ends.push(pos as u32 + 1);
                }
            }
        }

        // The intern map iterates in string order, which is exactly the
        // sorted-value-id column the binary-search lookup needs.
        let value_sorted: Vec<u32> = intern.values().copied().collect();

        Self::from_cols(StoreCols {
            labels: LabelColumn::Raw(Col::Owned(labels)),
            plabels: PlabelColumn::Raw(Col::Owned(plabels)),
            tags: TagColumn::Raw(Col::Owned(tags)),
            value_ids: U32Column::Raw(Col::Owned(value_ids)),
            values: StrTable::Owned(values),
            value_sorted: Col::Owned(value_sorted),
            sp_labels: LabelColumn::Raw(Col::Owned(sp_labels)),
            sp_rows: U32Column::Raw(Col::Owned(sp_perm)),
            sp_values: U32Column::Raw(Col::Owned(sp_values)),
            sp_keys: Col::Owned(sp_keys),
            sp_ends: Col::Owned(sp_ends),
            sd_labels: LabelColumn::Raw(Col::Owned(sd_labels)),
            sd_rows: U32Column::Raw(Col::Owned(sd_perm)),
            sd_values: U32Column::Raw(Col::Owned(sd_values)),
            sd_keys: Col::Owned(sd_keys),
            sd_ends: Col::Owned(sd_ends),
            ref_indexes: OnceLock::new(),
            source: None,
        })
    }

    /// Wrap an assembled column set into a delta-free store handle.
    fn from_cols(cols: StoreCols) -> Self {
        NodeStore { cols: Arc::new(cols), delta: None }
    }

    /// The lazily built reference indexes (see [`RefIndexes`]).
    fn refs(&self) -> &RefIndexes {
        self.ref_indexes.get_or_init(|| {
            let mut sp = BPlusTree::new();
            let mut sd = BPlusTree::new();
            let mut start = BPlusTree::new();
            for i in 0..self.labels.len() {
                let row = RowId(i as u32);
                let label = self.labels.get(i);
                sp.insert((self.plabel_at(i), label.start), row);
                sd.insert((self.tags.get(i), label.start), row);
                start.insert(label.start, row);
            }
            RefIndexes { sp, sd, start }
        })
    }

    /// P-label of row `i`, resolving the dictionary encoding against
    /// `sp_keys` when the column is packed. A corrupt dictionary index
    /// panics on the bounds check — the mapped trust model (see the
    /// [`crate::snapshot`] module docs).
    #[inline]
    fn plabel_at(&self, i: usize) -> u128 {
        match &self.plabels {
            PlabelColumn::Raw(c) => c[i],
            PlabelColumn::Dict(plane) => self.sp_keys[plane.as_ref().get(i) as usize],
        }
    }

    /// True when this store serves its columns from a read-only
    /// snapshot mapping rather than owned memory.
    pub fn is_mapped(&self) -> bool {
        self.source.is_some()
    }

    /// Number of tuples in the **base** columns. A delta-carrying
    /// store keeps reporting its base row count here (global row ids
    /// `>= len()` address delta inserts); use
    /// [`NodeStore::live_len`] for the merged live total.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the base columns hold no tuples.
    pub fn is_empty(&self) -> bool {
        self.labels.len() == 0
    }

    /// Live tuples a full merged scan yields: base rows minus
    /// tombstones plus delta inserts.
    pub fn live_len(&self) -> usize {
        match self.delta.as_deref() {
            None => self.labels.len(),
            Some(d) => self.labels.len() - d.deleted_len() + d.inserted_len(),
        }
    }

    /// The delta layered over this store's base columns, if any.
    pub fn delta(&self) -> Option<&DeltaStore> {
        self.delta.as_deref()
    }

    /// This store's base columns as a delta-free handle (shares the
    /// `Arc`ed columns; never copies).
    pub fn without_delta(&self) -> NodeStore {
        NodeStore { cols: Arc::clone(&self.cols), delta: None }
    }

    /// Layer a mutation log over this store's **base** columns. The
    /// log is cumulative: applying it replaces any delta the handle
    /// already carries rather than stacking on top of it. O(edits),
    /// never O(base) — the base columns are shared untouched.
    pub fn apply_edits(&self, edits: &DeltaEdits) -> Result<NodeStore, DeltaError> {
        let base = self.without_delta();
        let delta = DeltaStore::build(&base, edits)?;
        Ok(NodeStore { cols: Arc::clone(&self.cols), delta: Some(Arc::new(delta)) })
    }

    /// Fetch one tuple by row id (zero-copy view; packed columns
    /// block-decode the one position). Global rows `>= len()` resolve
    /// into the delta's inserted tuples.
    #[inline]
    pub fn record(&self, row: RowId) -> RecordView<'_> {
        let i = row.index();
        let n = self.labels.len();
        if i >= n {
            let delta = self.delta.as_deref().expect("row beyond the base needs a delta");
            let (plabel, d, tag, vid) = delta.ins_parts(i - n);
            return RecordView {
                plabel,
                start: d.start,
                end: d.end,
                level: d.level,
                tag,
                data: self.value(vid),
            };
        }
        let d = self.labels.get(i);
        RecordView {
            plabel: self.plabel_at(i),
            start: d.start,
            end: d.end,
            level: d.level,
            tag: TagId(self.tags.get(i)),
            data: self.value(self.value_ids.get(i)),
        }
    }

    /// Resolve an interned value id (base table first, then the
    /// delta's extension range).
    #[inline]
    pub fn value(&self, value_id: u32) -> Option<&str> {
        if value_id == NO_VALUE {
            None
        } else if (value_id as usize) < self.values.len() {
            self.values.get(value_id as usize)
        } else {
            self.delta.as_deref()?.value(value_id)
        }
    }

    /// The intern id of a PCDATA string, if any row carries it. Lets a
    /// `data = 'x'` filter run as an integer compare over a run's
    /// value ids. Implemented as a binary search over the
    /// string-ordered `value_sorted` column (plus the delta's sorted
    /// extension view), so it works identically over owned and mapped
    /// stores. Every distinct string has exactly one global id.
    pub fn value_id(&self, value: &str) -> Option<u32> {
        self.value_sorted
            .binary_search_by(|&id| {
                self.values.get(id as usize).unwrap_or("").cmp(value)
            })
            .ok()
            .map(|pos| self.value_sorted[pos])
            .or_else(|| self.delta.as_deref()?.value_id(value))
    }

    /// Value id of one global row ([`NO_VALUE`] for rows without
    /// PCDATA) — the point-read form the engine's value-filter
    /// pushdown uses over node lists.
    #[inline]
    pub fn value_id_of_row(&self, row: RowId) -> u32 {
        let i = row.index();
        let n = self.labels.len();
        if i >= n {
            let delta = self.delta.as_deref().expect("row beyond the base needs a delta");
            return delta.ins_parts(i - n).3;
        }
        self.value_ids.get(i)
    }

    /// Number of distinct interned PCDATA strings (base plus delta
    /// extension).
    pub fn value_count(&self) -> usize {
        self.values.len() + self.delta.as_deref().map_or(0, DeltaStore::value_count)
    }

    /// Global rows of all **live** tuples in start (document) order:
    /// base rows minus tombstones, merged with delta inserts.
    fn live_rows(&self) -> impl Iterator<Item = RowId> + '_ {
        let delta = self.delta.as_deref();
        let n = self.labels.len();
        let dn = delta.map_or(0, DeltaStore::inserted_len);
        let mut bi = 0usize;
        let mut di = 0usize;
        std::iter::from_fn(move || {
            if let Some(d) = delta {
                while bi < n && d.is_deleted_row(bi as u32) {
                    bi += 1;
                }
            }
            let base_start = (bi < n).then(|| self.labels.get(bi).start);
            let delta_start = delta.and_then(|d| (di < dn).then(|| d.ins_start(di)));
            match (base_start, delta_start) {
                (None, None) => None,
                (Some(b), d) if d.is_none_or(|ds| b < ds) => {
                    bi += 1;
                    Some(RowId(bi as u32 - 1))
                }
                _ => {
                    di += 1;
                    Some(RowId((n + di - 1) as u32))
                }
            }
        })
    }

    /// All live tuples in start (document) order.
    pub fn scan_all(&self) -> impl Iterator<Item = (RowId, RecordView<'_>)> {
        self.live_rows().map(move |row| (row, self.record(row)))
    }

    /// The live document-order tuples as one run (the baseline's full
    /// scan). Without a delta this is the base columns verbatim (the
    /// row of position `i` is `i` by construction); with one it is
    /// the merged splice of live base stretches and inserted tuples,
    /// whose pieces carry explicit row mappings. Resolve positions
    /// with [`ScanRun::row_at`].
    pub fn scan_doc(&self) -> ScanRun<'_> {
        let base = match (&self.labels, &self.value_ids) {
            (LabelColumn::Raw(l), U32Column::Raw(v)) => {
                ScanRun::Raw(Run { labels: l, rows: &[], value_ids: v, row_base: 0 })
            }
            (LabelColumn::Packed(l), U32Column::Packed { plane, .. }) => {
                ScanRun::Packed(PackedRun {
                    labels: l.as_ref(),
                    rows: None,
                    values: plane.as_ref(),
                    range: 0..self.labels.len(),
                })
            }
            _ => unreachable!("document columns share one source"),
        };
        let Some(d) = self.delta.as_deref() else { return base };
        if d.is_noop() {
            return base;
        }
        merge_key_run(base, d.doc_run(), d.del_starts())
    }

    /// All **base** D-labels in document order, as an owned vector (a
    /// full plane decode when the store is a packed v3 mapping). The
    /// `*_vec` accessors feed snapshot encoding and ignore any delta;
    /// compaction materializes live tuples via [`NodeStore::scan_all`]
    /// first.
    pub fn doc_labels_vec(&self) -> Vec<DLabel> {
        self.labels.to_vec()
    }

    /// All P-labels in document order, as an owned vector.
    pub fn doc_plabels_vec(&self) -> Vec<u128> {
        match &self.plabels {
            PlabelColumn::Raw(c) => c.to_vec(),
            PlabelColumn::Dict(plane) => plane
                .as_ref()
                .decode_all()
                .into_iter()
                .map(|ix| self.sp_keys[ix as usize])
                .collect(),
        }
    }

    /// All tags in document order, owned.
    pub(crate) fn doc_tags_vec(&self) -> Vec<u32> {
        self.tags.to_vec()
    }

    /// All value ids in document order, owned ([`NO_VALUE`] semantics).
    pub(crate) fn doc_value_ids_vec(&self) -> Vec<u32> {
        self.value_ids.to_vec()
    }

    /// The SP-permuted label column, owned.
    pub(crate) fn sp_labels_vec(&self) -> Vec<DLabel> {
        self.sp_labels.to_vec()
    }

    /// The SP row permutation, owned.
    pub(crate) fn sp_rows_vec(&self) -> Vec<u32> {
        self.sp_rows.to_vec()
    }

    /// The SP-permuted value-id column, owned.
    pub(crate) fn sp_values_vec(&self) -> Vec<u32> {
        self.sp_values.to_vec()
    }

    /// The SD-permuted label column, owned.
    pub(crate) fn sd_labels_vec(&self) -> Vec<DLabel> {
        self.sd_labels.to_vec()
    }

    /// The SD row permutation, owned.
    pub(crate) fn sd_rows_vec(&self) -> Vec<u32> {
        self.sd_rows.to_vec()
    }

    /// The SD-permuted value-id column, owned.
    pub(crate) fn sd_values_vec(&self) -> Vec<u32> {
        self.sd_values.to_vec()
    }

    /// The dictionary-coded form of the document-order P-label column:
    /// per row, the index of its P-label in `sp_keys`. A packed store
    /// decodes its plane; raw sources derive it by binary search
    /// (every stored P-label is an SP run key by construction).
    pub(crate) fn plabel_dict_indices(&self) -> Vec<u32> {
        match &self.plabels {
            PlabelColumn::Dict(plane) => plane.as_ref().decode_all(),
            PlabelColumn::Raw(c) => c
                .iter()
                .map(|p| {
                    self.sp_keys
                        .binary_search(p)
                        .expect("every stored P-label is an SP run key") as u32
                })
                .collect(),
        }
    }

    /// Positions `sp_ends[i-1]..sp_ends[i]` of SP run `i`.
    #[inline]
    fn sp_run_range(&self, i: usize) -> Range<usize> {
        let begin = if i == 0 { 0 } else { self.sp_ends[i - 1] as usize };
        begin..self.sp_ends[i] as usize
    }

    /// Positions of SD run `i`.
    #[inline]
    fn sd_run_range(&self, i: usize) -> Range<usize> {
        let begin = if i == 0 { 0 } else { self.sd_ends[i - 1] as usize };
        begin..self.sd_ends[i] as usize
    }

    /// Assemble the scan view of SP positions `r` from whichever
    /// source the clustering's columns share.
    fn sp_scan_run(&self, r: Range<usize>) -> ScanRun<'_> {
        match (&self.sp_labels, &self.sp_rows, &self.sp_values) {
            (LabelColumn::Raw(l), U32Column::Raw(rows), U32Column::Raw(v)) => {
                ScanRun::Raw(Run {
                    labels: &l[r.clone()],
                    rows: &rows[r.clone()],
                    value_ids: &v[r],
                    row_base: 0,
                })
            }
            (
                LabelColumn::Packed(l),
                U32Column::Packed { plane: rows, .. },
                U32Column::Packed { plane: v, .. },
            ) => ScanRun::Packed(PackedRun {
                labels: l.as_ref(),
                rows: Some(rows.as_ref()),
                values: v.as_ref(),
                range: r,
            }),
            _ => unreachable!("SP columns share one source"),
        }
    }

    /// Assemble the scan view of SD positions `r`.
    fn sd_scan_run(&self, r: Range<usize>) -> ScanRun<'_> {
        match (&self.sd_labels, &self.sd_rows, &self.sd_values) {
            (LabelColumn::Raw(l), U32Column::Raw(rows), U32Column::Raw(v)) => {
                ScanRun::Raw(Run {
                    labels: &l[r.clone()],
                    rows: &rows[r.clone()],
                    value_ids: &v[r],
                    row_base: 0,
                })
            }
            (
                LabelColumn::Packed(l),
                U32Column::Packed { plane: rows, .. },
                U32Column::Packed { plane: v, .. },
            ) => ScanRun::Packed(PackedRun {
                labels: l.as_ref(),
                rows: Some(rows.as_ref()),
                values: v.as_ref(),
                range: r,
            }),
            _ => unreachable!("SD columns share one source"),
        }
    }

    /// SP-clustered range scan: one run per distinct live P-label in
    /// `[p1, p2]`, in P-label order. Each run borrows the clustering's
    /// extents (raw slices or packed planes); no per-tuple index
    /// traversal happens. Keys the delta does not touch — checked with
    /// two binary searches over its tiny directories — stream out of
    /// the base unchanged, so an idle delta layer costs one branch per
    /// key.
    pub fn scan_plabel_range(&self, p1: u128, p2: u128) -> impl Iterator<Item = ScanRun<'_>> {
        let from = self.sp_keys.partition_point(|&k| k < p1);
        let to = self.sp_keys.partition_point(|&k| k <= p2);
        match self.delta.as_deref().filter(|d| d.touches_plabel_range(p1, p2)) {
            None => {
                EitherIter::A((from..to).map(move |i| self.sp_scan_run(self.sp_run_range(i))))
            }
            Some(d) => EitherIter::B(self.merged_plabel_range(d, p1, p2, from..to).into_iter()),
        }
    }

    /// Per-key merge walk for a delta-touched SP range: the base
    /// directory keys `base_keys` and the delta's keys in `[p1, p2]`
    /// stream out in ascending P-label order; equal keys merge, and
    /// runs emptied by tombstones are dropped (engines and shard
    /// splitting assume non-empty runs).
    fn merged_plabel_range<'a>(
        &'a self,
        d: &'a DeltaStore,
        p1: u128,
        p2: u128,
        base_keys: Range<usize>,
    ) -> Vec<ScanRun<'a>> {
        let dspan = d.sp_key_span(p1, p2);
        let mut out = Vec::with_capacity(base_keys.len() + dspan.len());
        let mut bi = base_keys.start;
        let mut di = dspan.start;
        while bi < base_keys.end || di < dspan.end {
            let bkey = (bi < base_keys.end).then(|| self.sp_keys[bi]);
            let dkey = (di < dspan.end).then(|| d.sp_key(di));
            let run = match (bkey, dkey) {
                (Some(b), k) if k.is_none_or(|k| b <= k) => {
                    let base = self.sp_scan_run(self.sp_run_range(bi));
                    bi += 1;
                    let dins = if k == Some(b) {
                        di += 1;
                        d.sp_run(b)
                    } else {
                        Run::EMPTY
                    };
                    let dels: Vec<u32> =
                        d.dels_for_plabel(b).iter().map(|&(_, s)| s).collect();
                    if dins.labels.is_empty() && dels.is_empty() {
                        base
                    } else {
                        merge_key_run(base, dins, &dels)
                    }
                }
                _ => {
                    let run = ScanRun::Raw(d.sp_run_at(di));
                    di += 1;
                    run
                }
            };
            if !run.is_empty() {
                out.push(run);
            }
        }
        out
    }

    /// SP-clustered equality scan (`plabel = p`): one start-ordered
    /// run, merged with the delta's inserts/tombstones for `p` when it
    /// has any (empty when `p` is unused).
    pub fn scan_plabel_eq(&self, p: u128) -> ScanRun<'_> {
        let base = match self.sp_keys.binary_search(&p) {
            Ok(at) => self.sp_scan_run(self.sp_run_range(at)),
            Err(_) => ScanRun::Raw(Run::EMPTY),
        };
        let Some(d) = self.delta.as_deref().filter(|d| d.touches_plabel(p)) else {
            return base;
        };
        let dels: Vec<u32> = d.dels_for_plabel(p).iter().map(|&(_, s)| s).collect();
        merge_key_run(base, d.sp_run(p), &dels)
    }

    /// SD-clustered scan: the start-ordered run of a tag (what the
    /// D-labeling baseline reads per query tag), merged with the
    /// delta's edits for that tag when it has any.
    pub fn scan_tag(&self, tag: TagId) -> ScanRun<'_> {
        let base = match self.sd_keys.binary_search(&tag.0) {
            Ok(at) => self.sd_scan_run(self.sd_run_range(at)),
            Err(_) => ScanRun::Raw(Run::EMPTY),
        };
        let Some(d) = self.delta.as_deref().filter(|d| d.touches_tag(tag)) else {
            return base;
        };
        let dels: Vec<u32> = d.dels_for_tag(tag).iter().map(|&(_, s)| s).collect();
        merge_key_run(base, d.sd_run(tag), &dels)
    }

    /// Row of the live tuple with the given `start`, by binary search
    /// over the start-ordered column (the "direct start-rank lookup"
    /// the result-fetch path uses instead of a B+ tree descent).
    /// Tombstoned base rows miss; delta inserts resolve to their
    /// global rows.
    pub fn row_of_start(&self, start: u32) -> Option<RowId> {
        if let Some(i) = self.labels.search_start(start) {
            let live = self
                .delta
                .as_deref()
                .is_none_or(|d| !d.is_deleted_row(i as u32));
            if live {
                return Some(RowId(i as u32));
            }
        }
        self.delta.as_deref()?.row_of_start(start).map(RowId)
    }

    /// Point lookup on the primary key `start`.
    pub fn get_by_start(&self, start: u32) -> Option<(RowId, RecordView<'_>)> {
        self.row_of_start(start).map(|row| (row, self.record(row)))
    }

    /// Rows whose `data` equals `value`, in start order: resolve the
    /// value id once (O(log n); an un-interned value returns an empty
    /// iterator without touching the columns), then filter the
    /// document-order value-id column (an O(n) integer sweep — this is
    /// a cold path; hot value predicates are fused into clustered
    /// scans by the engine).
    pub fn scan_value<'a>(
        &'a self,
        value: &str,
    ) -> impl Iterator<Item = (RowId, RecordView<'a>)> + 'a {
        let want = self.value_id(value);
        let take = if want.is_some() { usize::MAX } else { 0 };
        self.live_rows()
            .take(take)
            .filter(move |&row| Some(self.value_id_of_row(row)) == want)
            .map(move |row| (row, self.record(row)))
    }

    // --- shard-aware run iteration (parallel scan support) ----------

    /// Tuples the SP range scan of `[p1, p2]` would yield, from the
    /// run directory alone — two binary searches, no run
    /// materialization. The pooled executor asks this first so scans
    /// below its fan-out threshold never pay for shard preparation.
    pub fn plabel_range_size(&self, p1: u128, p2: u128) -> usize {
        let from = self.sp_keys.partition_point(|&k| k < p1);
        let to = self.sp_keys.partition_point(|&k| k <= p2);
        let base = if from >= to {
            0
        } else {
            let begin = if from == 0 { 0 } else { self.sp_ends[from - 1] as usize };
            self.sp_ends[to - 1] as usize - begin
        };
        match self.delta.as_deref() {
            None => base,
            Some(d) => {
                base - d.dels_in_plabel_range(p1, p2).len() + d.sp_size_range(p1, p2)
            }
        }
    }

    /// Tuples [`NodeStore::scan_plabel_eq`] would yield (directory
    /// lookups only).
    pub fn plabel_eq_size(&self, p: u128) -> usize {
        let base = match self.sp_keys.binary_search(&p) {
            Ok(at) => self.sp_run_range(at).len(),
            Err(_) => 0,
        };
        match self.delta.as_deref() {
            None => base,
            Some(d) => base - d.dels_for_plabel(p).len() + d.sp_run(p).labels.len(),
        }
    }

    /// Tuples [`NodeStore::scan_tag`] would yield (directory lookups
    /// only).
    pub fn tag_size(&self, tag: TagId) -> usize {
        let base = match self.sd_keys.binary_search(&tag.0) {
            Ok(at) => self.sd_run_range(at).len(),
            Err(_) => 0,
        };
        match self.delta.as_deref() {
            None => base,
            Some(d) => base - d.dels_for_tag(tag).len() + d.sd_run(tag).labels.len(),
        }
    }

    /// The SP range scan of `[p1, p2]` partitioned into at most
    /// `shards` balanced groups of run pieces (see [`shard_runs`]).
    /// Merged runs are flattened first so the splitter slices only
    /// flat pieces.
    pub fn shard_plabel_range(&self, p1: u128, p2: u128, shards: usize) -> Vec<Vec<ScanRun<'_>>> {
        shard_runs(flatten_merged(self.scan_plabel_range(p1, p2).collect()), shards)
    }

    /// The SP equality run of `p` partitioned into at most `shards`
    /// consecutive pieces.
    pub fn shard_plabel_eq(&self, p: u128, shards: usize) -> Vec<Vec<ScanRun<'_>>> {
        shard_runs(flatten_merged(vec![self.scan_plabel_eq(p)]), shards)
    }

    /// The SD tag run partitioned into at most `shards` consecutive
    /// pieces.
    pub fn shard_tag(&self, tag: TagId, shards: usize) -> Vec<Vec<ScanRun<'_>>> {
        shard_runs(flatten_merged(vec![self.scan_tag(tag)]), shards)
    }

    /// The live document-order scan partitioned into at most `shards`
    /// consecutive pieces.
    pub fn shard_doc(&self, shards: usize) -> Vec<Vec<ScanRun<'_>>> {
        shard_runs(flatten_merged(vec![self.scan_doc()]), shards)
    }

    // --- reference (B+ tree) scan path ------------------------------

    /// Reference SP range scan through the (lazily built) B+ tree: one
    /// index traversal plus a heap-style column lookup *per tuple*.
    /// This is the access path the seed used everywhere; it is kept as
    /// the oracle the columnar path is property-tested and benchmarked
    /// against. Like all `ref_*`/`*_vec` accessors it reads the
    /// **base** columns only — delta equivalence is tested against a
    /// store rebuilt from scratch instead.
    pub fn ref_scan_plabel_range(
        &self,
        p1: u128,
        p2: u128,
    ) -> impl Iterator<Item = (RowId, DLabel)> + '_ {
        self.refs()
            .sp
            .range(&(p1, 0), &(p2, u32::MAX))
            .map(move |(_, &row)| (row, self.labels.get(row.index())))
    }

    /// Reference SD tag scan through the lazily built B+ tree.
    pub fn ref_scan_tag(&self, tag: TagId) -> impl Iterator<Item = (RowId, DLabel)> + '_ {
        self.refs()
            .sd
            .range(&(tag.0, 0), &(tag.0, u32::MAX))
            .map(move |(_, &row)| (row, self.labels.get(row.index())))
    }

    /// Reference point lookup through the lazily built `start` B+ tree.
    pub fn ref_get_by_start(&self, start: u32) -> Option<(RowId, RecordView<'_>)> {
        self.refs()
            .start
            .get(&start)
            .map(|&row| (row, self.record(row)))
    }

    /// Height of the SP B+ tree (the paper's storage accounting).
    /// Builds the reference indexes if they have not been touched yet.
    pub fn sp_index_height(&self) -> usize {
        self.refs().sp.height()
    }

    /// Number of distinct P-label runs in the SP clustering (equals the
    /// number of distinct source paths in the document).
    pub fn sp_run_count(&self) -> usize {
        self.sp_keys.len()
    }

    /// Number of distinct tag runs in the SD clustering.
    pub fn sd_run_count(&self) -> usize {
        self.sd_keys.len()
    }
}

/// Column accumulator shared by the construction paths.
struct Columns {
    labels: Vec<DLabel>,
    plabels: Vec<u128>,
    tags: Vec<u32>,
    value_ids: Vec<u32>,
    values: Vec<String>,
    intern: BTreeMap<String, u32>,
}

impl Columns {
    fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            plabels: Vec::with_capacity(n),
            tags: Vec::with_capacity(n),
            value_ids: Vec::with_capacity(n),
            values: Vec::new(),
            intern: BTreeMap::new(),
        }
    }

    fn push(&mut self, plabel: u128, label: DLabel, tag: TagId, data: Option<&str>) {
        // Look up by `&str` first so duplicate occurrences (the common
        // case interning exists for) allocate nothing.
        let value_id = match data {
            None => NO_VALUE,
            Some(s) => match self.intern.get(s) {
                Some(&id) => id,
                None => self.intern_new(s.to_string()),
            },
        };
        self.push_columns(plabel, label, tag, value_id);
    }

    fn push_owned(&mut self, plabel: u128, label: DLabel, tag: TagId, data: Option<String>) {
        let value_id = match data {
            None => NO_VALUE,
            Some(s) => match self.intern.get(&s) {
                Some(&id) => id,
                None => self.intern_new(s),
            },
        };
        self.push_columns(plabel, label, tag, value_id);
    }

    fn intern_new(&mut self, s: String) -> u32 {
        let id = self.values.len() as u32;
        self.intern.insert(s.clone(), id);
        self.values.push(s);
        id
    }

    fn push_columns(&mut self, plabel: u128, label: DLabel, tag: TagId, value_id: u32) {
        self.labels.push(label);
        self.plabels.push(plabel);
        self.tags.push(tag.0);
        self.value_ids.push(value_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_labeling::label_document;

    fn store(src: &str) -> (Document, NodeStore) {
        let doc = Document::parse(src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store)
    }

    fn run_labels(run: &ScanRun<'_>) -> Vec<DLabel> {
        let mut out = Vec::new();
        run.decode_labels_into(&mut out);
        out
    }

    fn run_rows(run: &ScanRun<'_>) -> Vec<u32> {
        (0..run.len()).map(|i| run.row_at(i)).collect()
    }

    const SAMPLE: &str = "<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>";

    #[test]
    fn build_creates_one_tuple_per_node() {
        let (doc, s) = store(SAMPLE);
        assert_eq!(s.len(), doc.len());
        // Document-order column is start-ordered.
        let starts: Vec<u32> = s.scan_all().map(|(_, r)| r.start).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(!s.is_mapped());
    }

    #[test]
    fn scan_tag_returns_one_start_ordered_run() {
        let (doc, s) = store(SAMPLE);
        let n = doc.tags().get("n").unwrap();
        let run = s.scan_tag(n);
        assert_eq!(run.len(), 3);
        let labels = run_labels(&run);
        assert!(labels.windows(2).all(|w| w[0].start < w[1].start));
        assert!(run_rows(&run).iter().all(|&row| s.record(RowId(row)).tag == n));
        assert!(s.scan_tag(TagId(999)).is_empty());
    }

    #[test]
    fn scan_plabel_range_matches_suffix_query() {
        let (doc, s) = store(SAMPLE);
        let labels = label_document(&doc).unwrap();
        let e = doc.tags().get("e").unwrap();
        let n = doc.tags().get("n").unwrap();
        let q = labels.domain.path_interval(false, &[e, n]).unwrap();
        let mut data: Vec<String> = Vec::new();
        for run in s.scan_plabel_range(q.p1, q.p2) {
            for i in 0..run.len() {
                data.push(s.record(RowId(run.row_at(i))).data.unwrap().to_string());
            }
        }
        assert_eq!(data, ["a", "b"]); // not "c" (source path db/n)
    }

    #[test]
    fn columnar_scans_agree_with_reference_btree_scans() {
        let (doc, s) = store(SAMPLE);
        // Tag scans.
        for name in ["db", "e", "n", "x"] {
            let tag = doc.tags().get(name).unwrap();
            let fast: Vec<DLabel> = run_labels(&s.scan_tag(tag));
            let slow: Vec<DLabel> = s.ref_scan_tag(tag).map(|(_, l)| l).collect();
            assert_eq!(fast, slow, "{name}");
        }
        // Full plabel range (all runs, plabel order).
        let fast: Vec<DLabel> = s
            .scan_plabel_range(0, u128::MAX)
            .flat_map(|run| run_labels(&run))
            .collect();
        let slow: Vec<DLabel> = s.ref_scan_plabel_range(0, u128::MAX).map(|(_, l)| l).collect();
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), s.len());
    }

    #[test]
    fn runs_are_contiguous_and_start_sorted() {
        let (_, s) = store(SAMPLE);
        let mut total = 0;
        for run in s.scan_plabel_range(0, u128::MAX) {
            assert!(!run.is_empty());
            let labels = run_labels(&run);
            assert!(labels.windows(2).all(|w| w[0].start < w[1].start));
            // One distinct plabel per run.
            let plabels: Vec<u128> =
                run_rows(&run).iter().map(|&r| s.record(RowId(r)).plabel).collect();
            assert!(plabels.windows(2).all(|w| w[0] == w[1]));
            total += run.len();
        }
        assert_eq!(total, s.len());
        // Distinct source paths of SAMPLE: db, db/e, db/e/n, db/n,
        // db/x, db/x/e, db/x/e/n.
        assert_eq!(s.sp_run_count(), 7);
        // Distinct tags: db, e, n, x.
        assert_eq!(s.sd_run_count(), 4);
    }

    #[test]
    fn value_interning_and_lookup() {
        let (_, s) = store(SAMPLE);
        let rows: Vec<RecordView> = s.scan_value("b").map(|(_, r)| r).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data, Some("b"));
        assert_eq!(s.scan_value("zzz").count(), 0);
        let id = s.value_id("b").unwrap();
        assert_eq!(s.value(id), Some("b"));
        assert_eq!(s.value_id("zzz"), None);
        assert_eq!(s.value(NO_VALUE), None);
        assert_eq!(s.value_count(), 3);
    }

    #[test]
    fn get_by_start_roundtrip() {
        let (_, s) = store(SAMPLE);
        for (row, r) in s.scan_all().collect::<Vec<_>>() {
            let (row2, r2) = s.get_by_start(r.start).unwrap();
            assert_eq!(row, row2);
            assert_eq!(r, r2);
            // Reference B+ tree path agrees.
            let (row3, r3) = s.ref_get_by_start(r.start).unwrap();
            assert_eq!(row, row3);
            assert_eq!(r, r3);
        }
        assert!(s.get_by_start(10_000).is_none());
    }

    #[test]
    fn scan_doc_row_at_is_identity_and_clustered_rows_resolve() {
        let (_, s) = store(SAMPLE);
        let doc_run = s.scan_doc();
        assert_eq!(doc_run.len(), s.len());
        for i in 0..doc_run.len() {
            assert_eq!(doc_run.row_at(i), i as u32);
        }
        for run in s.scan_plabel_range(0, u128::MAX) {
            for i in 0..run.len() {
                let row = RowId(run.row_at(i));
                assert_eq!(s.record(row).dlabel(), run.label_at(i));
            }
        }
    }

    #[test]
    fn run_slice_preserves_row_resolution() {
        let (_, s) = store(SAMPLE);
        // Identity-mapped document run: slices must offset rows.
        let doc_run = s.scan_doc();
        let piece = doc_run.slice(2..5);
        assert_eq!(piece.len(), 3);
        for i in 0..piece.len() {
            assert_eq!(piece.row_at(i), 2 + i as u32);
            assert_eq!(s.record(RowId(piece.row_at(i))).dlabel(), piece.label_at(i));
        }
        // Explicit-rows clustered run: slices carry the permutation.
        for run in s.scan_plabel_range(0, u128::MAX).filter(|r| r.len() > 1) {
            let piece = run.slice(1..run.len());
            for i in 0..piece.len() {
                assert_eq!(s.record(RowId(piece.row_at(i))).dlabel(), piece.label_at(i));
            }
        }
    }

    #[test]
    fn shard_runs_partitions_exactly() {
        let (_, s) = store(SAMPLE);
        let all: Vec<ScanRun> = s.scan_plabel_range(0, u128::MAX).collect();
        let flat: Vec<u32> = all.iter().flat_map(|r| run_labels(r)).map(|l| l.start).collect();
        for shards in [1usize, 2, 3, 4, 7, 100] {
            let groups = shard_runs(all.clone(), shards);
            assert!(groups.len() <= shards.max(1));
            assert!(groups.iter().all(|g| !g.is_empty()), "no empty shard groups");
            let got: Vec<u32> = groups
                .iter()
                .flatten()
                .flat_map(run_labels)
                .map(|l| l.start)
                .collect();
            assert_eq!(got, flat, "{shards} shards must preserve piece order");
            // Balance: no group exceeds the ceiling target.
            let target = s.len().div_ceil(shards);
            for g in &groups {
                assert!(g.iter().map(|r| r.len()).sum::<usize>() <= target);
            }
        }
        assert!(shard_runs(Vec::<ScanRun>::new(), 4).is_empty());
        assert!(shard_runs(vec![ScanRun::Raw(Run::EMPTY)], 4).is_empty());
    }

    #[test]
    fn store_shard_helpers_cover_their_scans() {
        let (doc, s) = store(SAMPLE);
        let n = doc.tags().get("n").unwrap();
        let tag_total: usize = s
            .shard_tag(n, 2)
            .iter()
            .flatten()
            .map(|r| r.len())
            .sum();
        assert_eq!(tag_total, s.scan_tag(n).len());
        let doc_groups = s.shard_doc(3);
        assert_eq!(doc_groups.iter().flatten().map(|r| r.len()).sum::<usize>(), s.len());
        let range_groups = s.shard_plabel_range(0, u128::MAX, 3);
        assert_eq!(range_groups.iter().flatten().map(|r| r.len()).sum::<usize>(), s.len());
        assert!(s.shard_plabel_eq(u128::MAX, 2).is_empty(), "unused plabel has no runs");
    }

    #[test]
    fn dlabel_view_consistent() {
        let (_, s) = store(SAMPLE);
        for (_, r) in s.scan_all() {
            let d = r.dlabel();
            assert!(d.is_valid());
            assert_eq!(d.level, r.level);
        }
    }

    #[test]
    fn from_records_interns_duplicate_values() {
        let recs = vec![
            NodeRecord { plabel: 9, start: 0, end: 7, level: 1, tag: TagId(0), data: None },
            NodeRecord { plabel: 5, start: 1, end: 2, level: 2, tag: TagId(1), data: Some("v".into()) },
            NodeRecord { plabel: 5, start: 3, end: 4, level: 2, tag: TagId(1), data: Some("v".into()) },
            NodeRecord { plabel: 6, start: 5, end: 6, level: 2, tag: TagId(1), data: Some("w".into()) },
        ];
        let s = NodeStore::from_records(recs);
        assert_eq!(s.len(), 4);
        assert_eq!(s.value_count(), 2, "duplicate strings share one pool entry");
        let run = s.scan_plabel_eq(5);
        assert_eq!(run.len(), 2);
        let vids: Vec<u32> =
            run_rows(&run).iter().map(|&r| s.value_id_of_row(RowId(r))).collect();
        assert_eq!(vids[0], vids[1]);
        assert_eq!(s.scan_value("v").count(), 2);
    }

    #[test]
    fn mapped_store_scans_equal_owned_store_scans() {
        use std::io::Write;
        let (doc, owned) = store(SAMPLE);
        let tag_names: Vec<String> =
            doc.tags().iter().map(|(_, n)| n.to_string()).collect();
        let bytes = snapshot::encode_store(&owned, &tag_names, tag_names.len() as u32, 5);
        let path = std::env::temp_dir()
            .join(format!("blas_relation_mapped_{}.snap", std::process::id()));
        std::fs::File::create(&path).unwrap().write_all(&bytes).unwrap();
        let (mapped, meta) = NodeStore::from_mapped(MappedBytes::open(&path).unwrap()).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(meta.tag_names, tag_names);
        assert_eq!(mapped.len(), owned.len());
        // A v3 mapping serves packed document columns.
        assert!(matches!(mapped.labels, LabelColumn::Packed(_)));
        assert!(matches!(mapped.plabels, PlabelColumn::Dict(_)));
        // Every record identical.
        for (row, r) in owned.scan_all() {
            assert_eq!(mapped.record(row), r);
        }
        // Every clustered scan identical.
        for name in ["db", "e", "n", "x"] {
            let tag = doc.tags().get(name).unwrap();
            assert_eq!(run_labels(&mapped.scan_tag(tag)), run_labels(&owned.scan_tag(tag)));
            assert_eq!(run_rows(&mapped.scan_tag(tag)), run_rows(&owned.scan_tag(tag)));
        }
        let a: Vec<DLabel> = owned
            .scan_plabel_range(0, u128::MAX)
            .flat_map(|r| run_labels(&r))
            .collect();
        let b: Vec<DLabel> = mapped
            .scan_plabel_range(0, u128::MAX)
            .flat_map(|r| run_labels(&r))
            .collect();
        assert_eq!(a, b);
        // Point lookups agree across sources (packed binary search).
        for (_, r) in owned.scan_all() {
            assert_eq!(
                mapped.get_by_start(r.start).map(|(row, _)| row),
                owned.get_by_start(r.start).map(|(row, _)| row)
            );
        }
        // Value machinery identical (including the sentinel remap of
        // packed value-id planes).
        assert_eq!(mapped.value_id("b"), owned.value_id("b"));
        assert_eq!(mapped.value_id("zzz"), None);
        assert_eq!(mapped.scan_value("c").count(), 1);
        for (row, _) in owned.scan_all() {
            assert_eq!(mapped.value_id_of_row(row), owned.value_id_of_row(row));
        }
        // Column vector accessors round-trip through the encodings.
        assert_eq!(mapped.doc_labels_vec(), owned.doc_labels_vec());
        assert_eq!(mapped.doc_plabels_vec(), owned.doc_plabels_vec());
        assert_eq!(mapped.plabel_dict_indices(), owned.plabel_dict_indices());
        // Reference indexes build lazily over mapped columns too.
        assert_eq!(mapped.sp_index_height(), owned.sp_index_height());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn v2_mapped_store_serves_raw_columns() {
        use std::io::Write;
        let (doc, owned) = store(SAMPLE);
        let tag_names: Vec<String> =
            doc.tags().iter().map(|(_, n)| n.to_string()).collect();
        let bytes = snapshot::encode_store_v2(&owned, &tag_names, tag_names.len() as u32, 5);
        let path = std::env::temp_dir()
            .join(format!("blas_relation_mapped_v2_{}.snap", std::process::id()));
        std::fs::File::create(&path).unwrap().write_all(&bytes).unwrap();
        let (mapped, _) = NodeStore::from_mapped(MappedBytes::open(&path).unwrap()).unwrap();
        assert!(matches!(mapped.labels, LabelColumn::Raw(_)));
        assert!(matches!(mapped.plabels, PlabelColumn::Raw(_)));
        for (row, r) in owned.scan_all() {
            assert_eq!(mapped.record(row), r);
        }
        for name in ["db", "e", "n", "x"] {
            let tag = doc.tags().get(name).unwrap();
            assert_eq!(run_labels(&mapped.scan_tag(tag)), run_labels(&owned.scan_tag(tag)));
        }
        std::fs::remove_file(path).unwrap();
    }

    /// Comparable owned projection of a [`RecordView`] (row ids differ
    /// between a layered store and a rebuilt one, so records are
    /// compared by content).
    fn fields(r: RecordView<'_>) -> (u128, u32, u32, u16, TagId, Option<String>) {
        (r.plabel, r.start, r.end, r.level, r.tag, r.data.map(str::to_string))
    }

    #[test]
    fn delta_scans_match_a_store_rebuilt_from_the_live_records() {
        let (doc, s) = store(SAMPLE);
        let e = doc.tags().get("e").unwrap();
        let x = doc.tags().get("x").unwrap();
        let base: Vec<NodeRecord> = s
            .scan_all()
            .map(|(_, r)| NodeRecord {
                plabel: r.plabel,
                start: r.start,
                end: r.end,
                level: r.level,
                tag: r.tag,
                data: r.data.map(str::to_string),
            })
            .collect();
        // Tombstone an interior "e" and the "b" leaf; reinsert the
        // leaf's label retagged (same start — legal because it is
        // tombstoned — new tag, new string), then append two fresh
        // tuples past the document: one sharing an existing P-label
        // key, one on a delta-only key and delta-only tag.
        let del_leaf = base.iter().position(|r| r.data.as_deref() == Some("b")).unwrap();
        let del_e = base.iter().position(|r| r.tag == e).unwrap();
        let max_end = base.iter().map(|r| r.end).max().unwrap();
        let shared_plabel = base[del_leaf].plabel;
        let mut edits = DeltaEdits::new();
        edits.deleted_rows = vec![del_leaf as u32, del_e as u32];
        edits.inserted = vec![
            NodeRecord { tag: x, data: Some("zz".into()), ..base[del_leaf].clone() },
            NodeRecord {
                plabel: shared_plabel,
                start: max_end,
                end: max_end + 2,
                level: 3,
                tag: x,
                data: Some("a".into()),
            },
            NodeRecord {
                plabel: u128::MAX / 2,
                start: max_end + 2,
                end: max_end + 4,
                level: 2,
                tag: TagId(97),
                data: None,
            },
        ];
        let layered = s.apply_edits(&edits).unwrap();
        let mut live: Vec<NodeRecord> = base
            .iter()
            .enumerate()
            .filter(|(i, _)| !edits.deleted_rows.contains(&(*i as u32)))
            .map(|(_, r)| r.clone())
            .chain(edits.inserted.iter().cloned())
            .collect();
        live.sort_by_key(|r| r.start);
        let rebuilt = NodeStore::from_records(live);

        assert_eq!(layered.live_len(), rebuilt.len());
        assert_eq!(layered.len(), s.len(), "base row count is delta-independent");
        // Full document-order scan, record by record.
        let got: Vec<_> = layered.scan_all().map(|(_, r)| fields(r)).collect();
        let want: Vec<_> = rebuilt.scan_all().map(|(_, r)| fields(r)).collect();
        assert_eq!(got, want);
        // scan_doc agrees with scan_all through run resolution.
        let doc_run = layered.scan_doc();
        assert_eq!(doc_run.len(), rebuilt.len());
        let via_doc: Vec<_> =
            (0..doc_run.len()).map(|i| fields(layered.record(RowId(doc_run.row_at(i))))).collect();
        assert_eq!(via_doc, want);
        // Tag scans (including the delta-only tag) and their sizes.
        for tag in [doc.tags().get("db").unwrap(), e, doc.tags().get("n").unwrap(), x, TagId(97)]
        {
            let run = layered.scan_tag(tag);
            assert_eq!(run_labels(&run), run_labels(&rebuilt.scan_tag(tag)), "{tag:?}");
            assert_eq!(layered.tag_size(tag), run.len(), "{tag:?}");
            let sharded: usize =
                layered.shard_tag(tag, 2).iter().flatten().map(|r| r.len()).sum();
            assert_eq!(sharded, run.len(), "{tag:?}");
        }
        // SP scans: the merged full range equals the rebuilt one.
        let got: Vec<DLabel> = layered
            .scan_plabel_range(0, u128::MAX)
            .flat_map(|r| run_labels(&r))
            .collect();
        let want_labels: Vec<DLabel> = rebuilt
            .scan_plabel_range(0, u128::MAX)
            .flat_map(|r| run_labels(&r))
            .collect();
        assert_eq!(got, want_labels);
        assert_eq!(layered.plabel_range_size(0, u128::MAX), rebuilt.len());
        for p in [shared_plabel, u128::MAX / 2, base[del_e].plabel] {
            let run = layered.scan_plabel_eq(p);
            assert_eq!(run_labels(&run), run_labels(&rebuilt.scan_plabel_eq(p)), "{p}");
            assert_eq!(layered.plabel_eq_size(p), run.len(), "{p}");
        }
        // Value machinery: the deleted "b" is gone, "zz" is a delta
        // intern, "a" dedups against the base pool.
        assert_eq!(layered.scan_value("b").count(), 0);
        assert_eq!(layered.scan_value("zz").count(), 1);
        assert_eq!(layered.scan_value("a").count(), 2);
        let zz = layered.value_id("zz").unwrap();
        assert!(zz as usize >= s.value_count(), "delta ids extend the base range");
        assert_eq!(layered.value(zz), Some("zz"));
        assert_eq!(layered.value_id("a"), s.value_id("a"), "base strings keep their ids");
        // Point lookups: every live start resolves to the same record;
        // the start of the un-reinserted tombstone misses.
        for (_, r) in rebuilt.scan_all() {
            let (_, got) = layered.get_by_start(r.start).unwrap();
            assert_eq!(fields(got), fields(r));
        }
        assert!(layered.get_by_start(base[del_e].start).is_none());
        // Sharded document scan partitions the live tuples exactly.
        let doc_total: usize =
            layered.shard_doc(3).iter().flatten().map(|r| r.len()).sum();
        assert_eq!(doc_total, rebuilt.len());
    }

    #[test]
    fn an_empty_delta_keeps_scans_zero_copy_and_identical() {
        let (doc, s) = store(SAMPLE);
        let layered = s.apply_edits(&DeltaEdits::new()).unwrap();
        assert!(layered.delta().unwrap().is_noop());
        assert_eq!(layered.live_len(), s.len());
        let n = doc.tags().get("n").unwrap();
        // The merge layer is bypassed entirely: clustered runs still
        // expose their raw label slices (zero-copy).
        assert!(layered.scan_tag(n).raw_labels().is_some());
        assert_eq!(run_labels(&layered.scan_tag(n)), run_labels(&s.scan_tag(n)));
        assert_eq!(run_rows(&layered.scan_doc()), run_rows(&s.scan_doc()));
        assert_eq!(layered.value_count(), s.value_count());
        assert_eq!(layered.plabel_range_size(0, u128::MAX), s.len());
        // The base columns are shared behind the Arc, never copied.
        assert!(std::ptr::eq(ptr_of(&layered), ptr_of(&s)));
        // And stripping the delta shares them too.
        assert!(std::ptr::eq(ptr_of(&layered.without_delta()), ptr_of(&s)));
    }

    /// Address of a store's shared column block (sharing assertion).
    fn ptr_of(store: &NodeStore) -> *const StoreCols {
        let cols: &StoreCols = store;
        cols
    }

    #[test]
    fn apply_edits_rejects_invalid_scripts() {
        let (_, s) = store(SAMPLE);
        let rec = |start: u32| NodeRecord {
            plabel: 1,
            start,
            end: start + 1,
            level: 2,
            tag: TagId(0),
            data: None,
        };
        // Colliding with a live base start.
        let mut edits = DeltaEdits::new();
        edits.inserted = vec![rec(0)];
        assert!(matches!(s.apply_edits(&edits), Err(DeltaError::StartCollision(0))));
        // Two inserts on one start.
        let mut edits = DeltaEdits::new();
        edits.inserted = vec![rec(10_000), rec(10_000)];
        assert!(matches!(s.apply_edits(&edits), Err(DeltaError::DuplicateStart(10_000))));
        // Tombstoning a row the base does not have.
        let mut edits = DeltaEdits::new();
        edits.deleted_rows = vec![s.len() as u32];
        assert!(matches!(s.apply_edits(&edits), Err(DeltaError::RowOutOfRange(_))));
        // Inverted interval.
        let mut edits = DeltaEdits::new();
        edits.inserted = vec![NodeRecord { end: 10_000, ..rec(10_001) }];
        assert!(matches!(s.apply_edits(&edits), Err(DeltaError::BadInterval(10_001))));
    }
}
