//! Source-polymorphic clustered scans and the chunked filter kernels.
//!
//! PR 6 makes the hot scan path operate **directly on compressed
//! columns**: a clustered scan now yields [`ScanRun`]s, each either a
//! zero-copy [`Run`] over raw `&[DLabel]` extents (owned stores, v2
//! snapshots) or a [`PackedRun`] over the v3 snapshot's FOR/bit-packed
//! planes ([`crate::packed`]). The engines treat both uniformly:
//!
//! * **pass-through** raw runs still surface `&[DLabel]` borrows (the
//!   zero-copy contract of the mapped-snapshot work is unchanged);
//! * packed runs decode **per fixed-width block into stack buffers**
//!   inside [`ScanRun::filter_into`] / [`ScanRun::decode_labels_into`]
//!   — never per element — and the filter compaction is branch-free
//!   (`write; advance-by-predicate`), so both paths autovectorize.
//!
//! [`RunLike`] abstracts the slicing the parallel scan sharder
//! ([`crate::shard_runs`]) needs, so sharding works identically over
//! raw and packed runs (packed slicing is just range arithmetic;
//! blocks need not align with run or shard boundaries).

use crate::packed::{LabelPlanesRef, PlaneRef, BLOCK};
use crate::relation::{Run, NO_VALUE};
use blas_labeling::DLabel;
use std::ops::Range;

const ZERO_LABEL: DLabel = DLabel { start: 0, end: 0, level: 0 };

/// Per-tuple stream filter of a selection (`data = 'v'`, `level = k`),
/// resolved against the store's interned value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanFilter {
    /// Interned id the row's value must equal; `None` = no data filter;
    /// `Some(NO_VALUE)` = the value occurs nowhere in the document, so
    /// nothing passes.
    pub value_id: Option<u32>,
    /// Exact level the label must sit at, when present.
    pub level_eq: Option<u16>,
}

impl ScanFilter {
    /// The no-op filter (scans stay zero-copy under it).
    #[inline]
    pub fn pass_through() -> Self {
        ScanFilter { value_id: None, level_eq: None }
    }

    /// True when no predicate applies.
    #[inline]
    pub fn is_pass_through(&self) -> bool {
        self.value_id.is_none() && self.level_eq.is_none()
    }

    /// Reference semantics for one tuple (the kernels below are the
    /// chunked equivalents, proven identical by the property tests).
    #[inline]
    pub fn admits(&self, label: &DLabel, value_id: u32) -> bool {
        let value_ok = match self.value_id {
            Some(want) => want != NO_VALUE && value_id == want,
            None => true,
        };
        let level_ok = match self.level_eq {
            Some(k) => label.level == k,
            None => true,
        };
        value_ok && level_ok
    }
}

/// One clustered run over compressed (v3-mapped) columns: positions
/// `range` of one clustering permutation, viewed through the packed
/// planes. Slicing is range arithmetic — block boundaries are
/// internal to the decode loops and need not align with runs.
#[derive(Debug, Clone)]
pub struct PackedRun<'a> {
    /// The permutation's label planes (`start` / `end − start` /
    /// `level`).
    pub labels: LabelPlanesRef<'a>,
    /// Row-id plane of the permutation; `None` = identity (the
    /// document-order scan, where position *is* the row).
    pub rows: Option<PlaneRef<'a>>,
    /// Value-id plane of the permutation (`NO_VALUE` rows carry the
    /// store's sentinel remap — never equal to a real queried id).
    pub values: PlaneRef<'a>,
    /// Positions of this run within the permutation.
    pub range: Range<usize>,
}

impl<'a> PackedRun<'a> {
    /// Tuples in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the run holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Sub-run of relative positions `r`.
    #[inline]
    pub fn slice(&self, r: Range<usize>) -> PackedRun<'a> {
        debug_assert!(r.end <= self.len());
        PackedRun {
            range: self.range.start + r.start..self.range.start + r.end,
            ..self.clone()
        }
    }

    /// Document-order row id of relative position `i`.
    #[inline]
    pub fn row_at(&self, i: usize) -> u32 {
        let pos = self.range.start + i;
        match &self.rows {
            Some(rows) => rows.get(pos),
            None => pos as u32,
        }
    }

    /// Decode the label at relative position `i`.
    #[inline]
    pub fn label_at(&self, i: usize) -> DLabel {
        let pos = self.range.start + i;
        let start = self.labels.starts.get(pos);
        DLabel {
            start,
            end: start.wrapping_add(self.labels.extents.get(pos)),
            level: self.labels.levels.get(pos) as u16,
        }
    }
}

/// A clustered run from either column source. Scans hand these to the
/// engines; `Raw` preserves the zero-copy `&[DLabel]` path, `Packed`
/// decodes on the fly inside the chunked kernels.
// `Packed` carries the plane views inline (~10 slices). Runs are
// created once per scan — not per element — and never stored in bulk
// beyond the sharder's short-lived groups, so the variant skew is
// cheaper than a per-run heap allocation would be.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ScanRun<'a> {
    /// Borrowed raw extents (owned store or v2 snapshot mapping).
    Raw(Run<'a>),
    /// Compressed planes of a v3 snapshot mapping.
    Packed(PackedRun<'a>),
    /// Merge-at-scan pieces: the runs a delta-carrying store produces
    /// when one clustered key has tombstones or inserts. The pieces
    /// are `Raw`/`Packed` only (never nested), non-empty, and
    /// start-disjoint in ascending start order — so concatenating
    /// them preserves the clustered run invariant and every consumer
    /// below treats a `Multi` exactly like the flat run it splices
    /// together. Built by `relation.rs`; engines never construct one.
    Multi(Vec<ScanRun<'a>>),
}

/// Piece holding relative position `i` of a `Multi`, and the position
/// within that piece.
fn multi_locate<'b, 'a>(pieces: &'b [ScanRun<'a>], mut i: usize) -> (&'b ScanRun<'a>, usize) {
    for piece in pieces {
        let n = piece.len();
        if i < n {
            return (piece, i);
        }
        i -= n;
    }
    panic!("position out of bounds for merged run");
}

impl<'a> ScanRun<'a> {
    /// Splice `pieces` into one logical run, collapsing the degenerate
    /// shapes so the zero-copy single-piece path survives a merge that
    /// ends up touching nothing.
    pub(crate) fn multi(mut pieces: Vec<ScanRun<'a>>) -> ScanRun<'a> {
        debug_assert!(
            pieces.iter().all(|p| !matches!(p, ScanRun::Multi(_)) && !p.is_empty()),
            "multi pieces must be non-empty flat runs"
        );
        match pieces.len() {
            0 => ScanRun::Raw(Run::EMPTY),
            1 => pieces.pop().expect("one piece"),
            _ => ScanRun::Multi(pieces),
        }
    }

    /// Tuples in the run.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ScanRun::Raw(r) => r.len(),
            ScanRun::Packed(r) => r.len(),
            ScanRun::Multi(pieces) => pieces.iter().map(ScanRun::len).sum(),
        }
    }

    /// True when the run holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-run of relative positions `r`.
    #[inline]
    pub fn slice(&self, r: Range<usize>) -> ScanRun<'a> {
        match self {
            ScanRun::Raw(run) => ScanRun::Raw(run.slice(r)),
            ScanRun::Packed(run) => ScanRun::Packed(run.slice(r)),
            ScanRun::Multi(pieces) => {
                let mut out = Vec::new();
                let mut skip = r.start;
                let mut need = r.len();
                for piece in pieces {
                    if need == 0 {
                        break;
                    }
                    let n = piece.len();
                    if skip >= n {
                        skip -= n;
                        continue;
                    }
                    let take = (n - skip).min(need);
                    out.push(piece.slice(skip..skip + take));
                    skip = 0;
                    need -= take;
                }
                debug_assert_eq!(need, 0, "slice range out of bounds for merged run");
                ScanRun::multi(out)
            }
        }
    }

    /// Document-order row id of relative position `i`.
    #[inline]
    pub fn row_at(&self, i: usize) -> u32 {
        match self {
            ScanRun::Raw(run) => run.row_at(i).0,
            ScanRun::Packed(run) => run.row_at(i),
            ScanRun::Multi(pieces) => {
                let (piece, j) = multi_locate(pieces, i);
                piece.row_at(j)
            }
        }
    }

    /// The label at relative position `i` (decoding when packed).
    #[inline]
    pub fn label_at(&self, i: usize) -> DLabel {
        match self {
            ScanRun::Raw(run) => run.labels[i],
            ScanRun::Packed(run) => run.label_at(i),
            ScanRun::Multi(pieces) => {
                let (piece, j) = multi_locate(pieces, i);
                piece.label_at(j)
            }
        }
    }

    /// The borrowed label slice, when this run is raw — the engines use
    /// it to keep unfiltered scans zero-copy. Merged runs return `None`
    /// (the splice forces a copy, but only on keys the delta touches).
    #[inline]
    pub fn raw_labels(&self) -> Option<&'a [DLabel]> {
        match self {
            ScanRun::Raw(run) => Some(run.labels),
            ScanRun::Packed(_) | ScanRun::Multi(_) => None,
        }
    }

    /// Append every label of the run to `out` (block-decoded when
    /// packed).
    pub fn decode_labels_into(&self, out: &mut Vec<DLabel>) {
        match self {
            ScanRun::Raw(run) => out.extend_from_slice(run.labels),
            ScanRun::Multi(pieces) => {
                // Pieces are start-ascending and disjoint, so plain
                // concatenation keeps the run sorted.
                for piece in pieces {
                    piece.decode_labels_into(out);
                }
            }
            ScanRun::Packed(run) => {
                let mut starts = [0u32; BLOCK];
                let mut extents = [0u32; BLOCK];
                let mut levels = [0u32; BLOCK];
                let base = out.len();
                out.resize(base + run.len(), ZERO_LABEL);
                let mut written = base;
                let mut pos = run.range.start;
                while pos < run.range.end {
                    let take = (BLOCK - (pos & (BLOCK - 1))).min(run.range.end - pos);
                    run.labels.starts.decode_in_block(pos, &mut starts[..take]);
                    run.labels.extents.decode_in_block(pos, &mut extents[..take]);
                    run.labels.levels.decode_in_block(pos, &mut levels[..take]);
                    for j in 0..take {
                        out[written + j] = DLabel {
                            start: starts[j],
                            end: starts[j].wrapping_add(extents[j]),
                            level: levels[j] as u16,
                        };
                    }
                    pos += take;
                    written += take;
                }
            }
        }
    }

    /// The chunked filter kernel: append the labels `filter` admits,
    /// in run order. Equivalent to `admits` per tuple but compiled as
    /// fixed-width, branch-free compaction loops (`write; advance by
    /// predicate`), decoding packed runs block-by-block into stack
    /// buffers.
    pub fn filter_into(&self, filter: ScanFilter, out: &mut Vec<DLabel>) {
        if filter.is_pass_through() {
            self.decode_labels_into(out);
            return;
        }
        if filter.value_id == Some(NO_VALUE) {
            return; // queried value occurs nowhere: nothing passes
        }
        match self {
            ScanRun::Raw(run) => filter_raw(run, filter, out),
            ScanRun::Packed(run) => filter_packed(run, filter, out),
            ScanRun::Multi(pieces) => {
                for piece in pieces {
                    piece.filter_into(filter, out);
                }
            }
        }
    }

    /// Sum of `start` positions — the range/tag-scan bench kernel. The
    /// packed path reads only the `start` plane (~1–3 payload bytes per
    /// element instead of a 12-byte `DLabel`).
    pub fn sum_starts(&self) -> u64 {
        match self {
            ScanRun::Raw(run) => run.labels.iter().map(|l| l.start as u64).sum(),
            ScanRun::Packed(run) => run.labels.starts.sum_range(run.range.clone()),
            ScanRun::Multi(pieces) => pieces.iter().map(ScanRun::sum_starts).sum(),
        }
    }
}

/// Branch-free filter over raw extents: one fixed-shape loop per
/// predicate combination, compaction by predicated advance.
fn filter_raw(run: &Run<'_>, filter: ScanFilter, out: &mut Vec<DLabel>) {
    let n = run.labels.len();
    let base = out.len();
    out.resize(base + n, ZERO_LABEL);
    let dst = &mut out[base..];
    let mut k = 0usize;
    match (filter.value_id, filter.level_eq) {
        (Some(want), None) => {
            for (label, &vid) in run.labels.iter().zip(run.value_ids) {
                dst[k] = *label;
                k += (vid == want) as usize;
            }
        }
        (None, Some(lvl)) => {
            for label in run.labels {
                dst[k] = *label;
                k += (label.level == lvl) as usize;
            }
        }
        (Some(want), Some(lvl)) => {
            for (label, &vid) in run.labels.iter().zip(run.value_ids) {
                dst[k] = *label;
                k += ((vid == want) & (label.level == lvl)) as usize;
            }
        }
        (None, None) => unreachable!("pass-through handled by caller"),
    }
    out.truncate(base + k);
}

/// Branch-free filter over packed planes: decode each block-aligned
/// chunk into stack buffers, then compact with predicated advance.
fn filter_packed(run: &PackedRun<'_>, filter: ScanFilter, out: &mut Vec<DLabel>) {
    let mut starts = [0u32; BLOCK];
    let mut extents = [0u32; BLOCK];
    let mut levels = [0u32; BLOCK];
    let mut values = [0u32; BLOCK];
    let need_values = filter.value_id.is_some();
    let base = out.len();
    out.resize(base + run.len(), ZERO_LABEL);
    let mut k = 0usize;
    let mut pos = run.range.start;
    while pos < run.range.end {
        let take = (BLOCK - (pos & (BLOCK - 1))).min(run.range.end - pos);
        run.labels.starts.decode_in_block(pos, &mut starts[..take]);
        run.labels.extents.decode_in_block(pos, &mut extents[..take]);
        run.labels.levels.decode_in_block(pos, &mut levels[..take]);
        if need_values {
            run.values.decode_in_block(pos, &mut values[..take]);
        }
        let dst = &mut out[base + k..];
        let mut c = 0usize;
        match (filter.value_id, filter.level_eq) {
            (Some(want), None) => {
                for j in 0..take {
                    dst[c] = DLabel {
                        start: starts[j],
                        end: starts[j].wrapping_add(extents[j]),
                        level: levels[j] as u16,
                    };
                    c += (values[j] == want) as usize;
                }
            }
            (None, Some(lvl)) => {
                let lvl = lvl as u32;
                for j in 0..take {
                    dst[c] = DLabel {
                        start: starts[j],
                        end: starts[j].wrapping_add(extents[j]),
                        level: levels[j] as u16,
                    };
                    c += (levels[j] == lvl) as usize;
                }
            }
            (Some(want), Some(lvl)) => {
                let lvl = lvl as u32;
                for j in 0..take {
                    dst[c] = DLabel {
                        start: starts[j],
                        end: starts[j].wrapping_add(extents[j]),
                        level: levels[j] as u16,
                    };
                    c += ((values[j] == want) & (levels[j] == lvl)) as usize;
                }
            }
            (None, None) => unreachable!("pass-through handled by caller"),
        }
        k += c;
        pos += take;
    }
    out.truncate(base + k);
}

/// The slicing interface the parallel-scan sharder needs: both raw
/// [`Run`]s and [`ScanRun`]s shard the same way.
pub trait RunLike: Clone {
    /// Tuples in the run.
    fn len(&self) -> usize;
    /// True when the run holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Sub-run of relative positions `r`.
    fn slice(&self, r: Range<usize>) -> Self;
}

impl<'a> RunLike for Run<'a> {
    #[inline]
    fn len(&self) -> usize {
        Run::len(self)
    }
    #[inline]
    fn slice(&self, r: Range<usize>) -> Self {
        Run::slice(self, r)
    }
}

impl<'a> RunLike for ScanRun<'a> {
    #[inline]
    fn len(&self) -> usize {
        ScanRun::len(self)
    }
    #[inline]
    fn slice(&self, r: Range<usize>) -> Self {
        ScanRun::slice(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{encode_label_planes, encode_plane};

    /// Build a packed run over synthetic labels/values and the same
    /// data as a raw run; both must answer identically.
    struct Fixture {
        labels: Vec<DLabel>,
        value_ids: Vec<u32>,
        label_bytes: Vec<u8>,
        value_bytes: Vec<u8>,
        row_bytes: Vec<u8>,
    }

    fn fixture(n: u32) -> Fixture {
        let labels: Vec<DLabel> = (0..n)
            .map(|i| DLabel {
                start: i * 2,
                end: i * 2 + 1 + (i % 5),
                level: (i % 9) as u16 + 1,
            })
            .collect();
        let value_ids: Vec<u32> = (0..n).map(|i| if i % 3 == 0 { i % 7 } else { 1000 }).collect();
        let starts: Vec<u32> = labels.iter().map(|l| l.start).collect();
        let extents: Vec<u32> = labels.iter().map(|l| l.end - l.start).collect();
        let levels: Vec<u32> = labels.iter().map(|l| l.level as u32).collect();
        let rows: Vec<u32> = (0..n).rev().collect(); // any permutation
        let mut label_bytes = Vec::new();
        encode_label_planes(&starts, &extents, &levels, &mut label_bytes);
        let mut value_bytes = Vec::new();
        encode_plane(&value_ids, &mut value_bytes);
        let mut row_bytes = Vec::new();
        encode_plane(&rows, &mut row_bytes);
        Fixture { labels, value_ids, label_bytes, value_bytes, row_bytes }
    }

    fn runs_of(f: &Fixture) -> (ScanRun<'_>, ScanRun<'_>) {
        let n = f.labels.len();
        let raw = ScanRun::Raw(Run {
            labels: &f.labels,
            rows: &[],
            value_ids: &f.value_ids,
            row_base: 0,
        });
        let (planes, _) = LabelPlanesRef::parse(&f.label_bytes, n).unwrap();
        let (values, _) = PlaneRef::parse(&f.value_bytes, n).unwrap();
        let (rows, _) = PlaneRef::parse(&f.row_bytes, n).unwrap();
        let packed = ScanRun::Packed(PackedRun {
            labels: planes,
            rows: Some(rows),
            values,
            range: 0..n,
        });
        (raw, packed)
    }

    #[test]
    fn packed_decode_matches_raw() {
        let f = fixture(3000);
        let (raw, packed) = runs_of(&f);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        raw.decode_labels_into(&mut a);
        packed.decode_labels_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(raw.sum_starts(), packed.sum_starts());
        for i in [0, 1, 1023, 1024, 2999] {
            assert_eq!(raw.label_at(i), packed.label_at(i), "label_at({i})");
        }
    }

    #[test]
    fn packed_filters_match_raw_for_every_predicate_shape() {
        let f = fixture(2600);
        let (raw, packed) = runs_of(&f);
        let filters = [
            ScanFilter::pass_through(),
            ScanFilter { value_id: Some(3), level_eq: None },
            ScanFilter { value_id: None, level_eq: Some(4) },
            ScanFilter { value_id: Some(3), level_eq: Some(4) },
            ScanFilter { value_id: Some(NO_VALUE), level_eq: None },
            ScanFilter { value_id: Some(999_999), level_eq: None },
        ];
        for filter in filters {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            raw.filter_into(filter, &mut a);
            packed.filter_into(filter, &mut b);
            assert_eq!(a, b, "{filter:?}");
            // And both agree with the per-tuple reference semantics.
            let reference: Vec<DLabel> = f
                .labels
                .iter()
                .zip(&f.value_ids)
                .filter(|(l, &v)| filter.admits(l, v))
                .map(|(l, _)| *l)
                .collect();
            assert_eq!(a, reference, "{filter:?} vs reference");
        }
    }

    #[test]
    fn slices_preserve_rows_and_filters() {
        let f = fixture(2048);
        let (raw, packed) = runs_of(&f);
        // Identity rows on the raw side vs an explicit reverse
        // permutation on the packed side: compare against expectations
        // separately.
        for i in [0usize, 5, 2047] {
            assert_eq!(raw.row_at(i), i as u32);
            assert_eq!(packed.row_at(i), (2047 - i) as u32);
        }
        let (ra, pa) = (raw.slice(100..1500), packed.slice(100..1500));
        assert_eq!(ra.len(), 1400);
        assert_eq!(pa.len(), 1400);
        assert_eq!(pa.row_at(0), 2047 - 100);
        let filter = ScanFilter { value_id: None, level_eq: Some(6) };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        ra.filter_into(filter, &mut a);
        pa.filter_into(filter, &mut b);
        assert_eq!(a, b);
        assert_eq!(ra.sum_starts(), pa.sum_starts());
    }

    #[test]
    fn merged_runs_behave_like_their_flat_splice() {
        let f = fixture(3000);
        let (raw, packed) = runs_of(&f);
        // Splice alternating raw/packed pieces of the same underlying
        // positions back together; every reader must see the flat run.
        let multi = ScanRun::multi(vec![
            raw.slice(0..700),
            packed.slice(700..1600),
            raw.slice(1600..3000),
        ]);
        assert!(matches!(multi, ScanRun::Multi(_)));
        assert_eq!(multi.len(), 3000);
        assert!(multi.raw_labels().is_none());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        multi.decode_labels_into(&mut a);
        raw.decode_labels_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(multi.sum_starts(), raw.sum_starts());
        for i in [0usize, 699, 700, 1599, 1600, 2999] {
            assert_eq!(multi.label_at(i), raw.label_at(i), "label_at({i})");
        }
        // Raw pieces carry identity rows; the packed piece holds the
        // fixture's reverse permutation.
        assert_eq!(multi.row_at(0), 0);
        assert_eq!(multi.row_at(700), 2999 - 700);

        let filter = ScanFilter { value_id: Some(3), level_eq: Some(4) };
        let (mut fa, mut fb) = (Vec::new(), Vec::new());
        multi.filter_into(filter, &mut fa);
        raw.filter_into(filter, &mut fb);
        assert_eq!(fa, fb);

        // Cross-piece slicing and sharding behave like the flat run.
        let s = multi.slice(500..2000);
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        s.decode_labels_into(&mut sa);
        raw.slice(500..2000).decode_labels_into(&mut sb);
        assert_eq!(sa, sb);
        let groups = crate::shard_runs(vec![multi.clone()], 4);
        let total: usize = groups.iter().flatten().map(|r| r.len()).sum();
        assert_eq!(total, 3000);
        let mut all = Vec::new();
        for run in groups.iter().flatten() {
            run.decode_labels_into(&mut all);
        }
        assert_eq!(all, b);

        // Degenerate shapes collapse back to flat runs.
        assert!(matches!(ScanRun::multi(Vec::new()), ScanRun::Raw(_)));
        assert!(matches!(ScanRun::multi(vec![raw.slice(0..5)]), ScanRun::Raw(_)));
    }

    #[test]
    fn scan_runs_shard_like_raw_runs() {
        let f = fixture(4096);
        let (_, packed) = runs_of(&f);
        let groups = crate::shard_runs(vec![packed.clone()], 4);
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().flatten().map(|r| r.len()).sum();
        assert_eq!(total, 4096);
        let mut all = Vec::new();
        for run in groups.iter().flatten() {
            run.decode_labels_into(&mut all);
        }
        let mut expect = Vec::new();
        packed.decode_labels_into(&mut expect);
        assert_eq!(all, expect);
    }
}
