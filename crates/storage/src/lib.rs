//! # blas-storage — relational storage substrate for BLAS
//!
//! The paper stores labeled XML in relations inside an RDBMS (DB2 in
//! §5.2). This crate is the from-scratch stand-in: a B+ tree
//! ([`bptree`]) and an indexed tuple store ([`relation`]) exposing the
//! two clusterings the paper creates — SP `{plabel, start}` for BLAS and
//! SD `{tag, start}` for the D-labeling baseline — plus `start` and
//! `data` indexes.
//!
//! Access-path choice and tuple-visit accounting live in `blas-engine`;
//! this crate only guarantees that every scan yields tuples in exactly
//! the order the corresponding clustered relation would.

pub mod bptree;
pub mod relation;
pub mod snapshot;

pub use bptree::BPlusTree;
pub use relation::{NodeRecord, NodeStore, RowId};
pub use snapshot::{Snapshot, SnapshotError};
