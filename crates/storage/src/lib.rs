//! # blas-storage — columnar clustered storage for BLAS
//!
//! The paper stores labeled XML in relations inside an RDBMS (DB2 in
//! §5.2), physically clustered as SP `{plabel, start}` for BLAS and SD
//! `{tag, start}` for the D-labeling baseline. This crate is the
//! from-scratch stand-in:
//!
//! * [`relation`] — the columnar [`NodeStore`]: the label/tag/value
//!   columns held in **two physical sort orders** with per-key run
//!   directories, so clustered scans return zero-copy `&[DLabel]`
//!   slices (see the module docs for the layout). Scans are also
//!   available in *sharded* form ([`shard_runs`] and the
//!   `NodeStore::shard_*` methods): balanced groups of zero-copy run
//!   pieces — oversized runs are split with [`Run::slice`] — that the
//!   engine's parallel scan operator fans out across worker threads;
//! * [`bptree`] — a from-scratch B+ tree, retained for the `start`
//!   primary-key and `data` value indexes, the paper's index-height
//!   accounting, and the reference scan path the columnar layout is
//!   tested and benchmarked against;
//! * [`snapshot`] — versioned, checksummed binary persistence of the
//!   labeled form, encoding straight from the columns.
//!
//! Access-path choice and tuple-visit accounting live in `blas-engine`;
//! this crate only guarantees that every scan yields tuples in exactly
//! the order the corresponding clustered relation would.

pub mod bptree;
pub mod relation;
pub mod snapshot;

pub use bptree::BPlusTree;
pub use relation::{shard_runs, NodeRecord, NodeStore, RecordView, RowId, Run, NO_VALUE};
pub use snapshot::{Snapshot, SnapshotError};
