//! # blas-storage — columnar clustered storage for BLAS
//!
//! The paper stores labeled XML in relations inside an RDBMS (DB2 in
//! §5.2), physically clustered as SP `{plabel, start}` for BLAS and SD
//! `{tag, start}` for the D-labeling baseline. This crate is the
//! from-scratch stand-in:
//!
//! * [`relation`] — the columnar [`NodeStore`]: the label/tag/value
//!   columns held in **two physical sort orders** with per-key run
//!   directories (see the module docs for the layout). Every column is
//!   a *column source*: owned memory, a raw borrowed extent of a
//!   read-only snapshot mapping, or one of the [`packed`] compressed
//!   encodings borrowed from a v3 mapping — scans, and therefore the
//!   engines above, cannot tell the difference. Raw clustered scans
//!   still return zero-copy `&[DLabel]` slices; packed ones decode
//!   block-at-a-time through the same [`ScanRun`] interface. Scans are
//!   also available in *sharded* form ([`shard_runs`] and the
//!   `NodeStore::shard_*` methods): balanced groups of run pieces —
//!   oversized runs are split with `slice` — that the engine's
//!   parallel scan operator fans out across worker threads;
//! * [`delta`] — the mutable layer over the immutable base: inserted,
//!   retagged, and deleted nodes held in small SP/SD-sorted side
//!   columns with their own mini run directories, merged into every
//!   scan at read time (base ⊎ delta) so the engines above see one
//!   logical relation. Includes the checksummed sidecar log format
//!   ([`delta::encode_edits`] / [`delta::decode_edits`]);
//! * [`packed`] — the block-based compressed column codecs
//!   (frame-of-reference planes, delta label planes, bitpacked tags)
//!   plus [`scan`]'s chunked, branch-free filter kernels that operate
//!   on them directly;
//! * [`snapshot`] — the sectioned, page-aligned, checksummed on-disk
//!   format: one aligned little-endian extent per column (both
//!   clusterings, both run directories, the interned-string arena),
//!   with a per-section encoding descriptor (format v3) selecting raw
//!   or packed, so a mapping of the file *is* the store. Two read
//!   paths: full validating decode ([`snapshot::decode`]) and O(1)
//!   zero-decode open (`NodeStore::from_mapped`);
//! * [`mapped`] — the no-dependency read-only file mapping
//!   ([`MappedBytes`]): `mmap` via direct FFI on 64-bit Unix, an
//!   aligned heap read everywhere else;
//! * [`bptree`] — a from-scratch B+ tree, now **lazily derived** from
//!   the columns (never persisted, never built on open): retained for
//!   the paper's index-height accounting and the reference scan path
//!   the columnar layout is tested and benchmarked against.
//!
//! Access-path choice and tuple-visit accounting live in `blas-engine`;
//! this crate only guarantees that every scan yields tuples in exactly
//! the order the corresponding clustered relation would — from either
//! column source.

pub mod bptree;
pub mod delta;
pub mod mapped;
pub mod packed;
pub mod relation;
pub mod scan;
pub mod snapshot;

pub use bptree::BPlusTree;
pub use delta::{decode_edits, encode_edits, DeltaEdits, DeltaError, DeltaStore};
pub use mapped::MappedBytes;
pub use relation::{shard_runs, NodeRecord, NodeStore, RecordView, RowId, Run, NO_VALUE};
pub use scan::{PackedRun, RunLike, ScanFilter, ScanRun};
pub use snapshot::{Snapshot, SnapshotError, SnapshotMeta};
