//! Block codecs for the compressed (v3) snapshot columns.
//!
//! Three encodings, all designed so that a *mapped* snapshot can be
//! scanned directly — decode happens per fixed-width block into a
//! stack buffer inside the scan kernels, never per element:
//!
//! * **FOR planes** ([`encode_plane`] / [`PlaneRef`]): a `u32` sequence
//!   split into fixed [`BLOCK`]-value blocks; each block stores its
//!   minimum (frame of reference) plus the per-value deltas at the
//!   narrowest byte width `w ∈ {0, 1, 2, 3, 4}` that fits the block's
//!   range (`w = 0` is a constant block). Block index is `i >> 10` —
//!   O(1) random access with no block directory search.
//! * **label planes** ([`encode_label_planes`] / [`LabelPlanesRef`]):
//!   a `DLabel` column as three concatenated FOR planes — `start`,
//!   `end − start` (the *extent*, which is small for most nodes where
//!   the raw `end` is not), and `level`.
//! * **bit-packed plane** ([`encode_bitpacked`] / [`BitpackRef`]): the
//!   tag column at `ceil(log2(max + 1))` bits per value, read through
//!   unaligned little-endian `u64` windows (the payload carries 8
//!   slack bytes so the window read at the last value stays in
//!   bounds).
//!
//! All readers are **byte-wise and endian-portable**: block metadata is
//! decoded with explicit little-endian byte reads (once per block, not
//! per value), so the same code serves the mapped hot path and the
//! portable [`crate::snapshot::decode`] path, and nothing in a plane
//! needs alignment beyond the 8-byte padding the writer emits.
//!
//! # Validation model
//!
//! [`PlaneRef::parse`] / [`BitpackRef::parse`] check plane *structure*
//! at open time: value counts match the snapshot header, widths are
//! sane, and every block's payload extent is in bounds — after which
//! no later read can leave the section, so the scan kernels contain no
//! per-element bounds branches. Payload *content* is not semantically
//! validated on the mapped path (exactly like the raw v2 permutation
//! columns); the snapshot footer checksum covers it on the verifying
//! paths, and decoders use wrapping arithmetic so corrupt content can
//! mis-answer but never panic.

use crate::relation::Col;
use std::ops::Range;

/// Values per FOR block. Fixed (the last block of a plane is ragged),
/// so position `i` lives in block `i >> 10` at in-block offset
/// `i & (BLOCK - 1)` — no directory lookup on random access.
pub const BLOCK: usize = 1024;

/// Structural-validation error for packed planes: a static description
/// of what was malformed (mapped to `SnapshotError::Corrupt`).
pub type PlaneError = &'static str;

#[inline]
fn round8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

#[inline]
fn read_u32_le(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Narrowest delta width (bytes) covering `range`.
#[inline]
fn width_for(range: u32) -> u8 {
    match range {
        0 => 0,
        1..=0xff => 1,
        0x100..=0xffff => 2,
        0x1_0000..=0xff_ffff => 3,
        _ => 4,
    }
}

/// Append one FOR plane for `values` to `out`, returning the encoded
/// length (a multiple of 8, so planes concatenate 8-aligned).
///
/// Wire layout, relative to the plane start:
///
/// ```text
/// [n: u32][payload_len: u32]
/// [mins:   u32 × nb]                 nb = ceil(n / BLOCK)
/// [offs:   u32 × nb]                 byte offset of block b's deltas
/// [widths: u8  × nb]  (padded to 8)  w(b) ∈ {0, 1, 2, 3, 4}
/// [payload: payload_len bytes]  (padded to 8)
/// ```
pub fn encode_plane(values: &[u32], out: &mut Vec<u8>) -> usize {
    let n = values.len();
    let nb = n.div_ceil(BLOCK);
    let mut mins = Vec::with_capacity(nb);
    let mut offs = Vec::with_capacity(nb);
    let mut widths = Vec::with_capacity(nb);
    let mut payload: Vec<u8> = Vec::new();
    for b in 0..nb {
        let blk = &values[b * BLOCK..n.min((b + 1) * BLOCK)];
        let min = blk.iter().copied().min().unwrap_or(0);
        let max = blk.iter().copied().max().unwrap_or(0);
        let w = width_for(max - min);
        mins.push(min);
        offs.push(payload.len() as u32);
        widths.push(w);
        for &v in blk {
            let d = v - min;
            payload.extend_from_slice(&d.to_le_bytes()[..w as usize]);
        }
    }
    let base = out.len();
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    for m in &mins {
        out.extend_from_slice(&m.to_le_bytes());
    }
    for o in &offs {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&widths);
    out.resize(base + 8 + 8 * nb + round8(nb), 0);
    out.extend_from_slice(&payload);
    out.resize(base + 8 + 8 * nb + round8(nb) + round8(payload.len()), 0);
    out.len() - base
}

/// A parsed, structurally-validated view of one FOR plane.
#[derive(Clone, Copy, Debug)]
pub struct PlaneRef<'a> {
    n: usize,
    /// `u32 × nb`, little-endian bytes.
    mins: &'a [u8],
    /// `u32 × nb`, little-endian bytes.
    offs: &'a [u8],
    /// `u8 × nb`.
    widths: &'a [u8],
    payload: &'a [u8],
}

impl<'a> PlaneRef<'a> {
    /// Parse a plane at the start of `bytes`, validating its structure
    /// against the caller's expected value count. Returns the view and
    /// the number of bytes consumed (so planes can be concatenated).
    pub fn parse(bytes: &'a [u8], expect_n: usize) -> Result<(Self, usize), PlaneError> {
        if bytes.len() < 8 {
            return Err("plane header truncated");
        }
        let n = read_u32_le(bytes, 0) as usize;
        let payload_len = read_u32_le(bytes, 4) as usize;
        if n != expect_n {
            return Err("plane value count disagrees with snapshot header");
        }
        let nb = n.div_ceil(BLOCK);
        let total = 8 + 8 * nb + round8(nb) + round8(payload_len);
        if bytes.len() < total {
            return Err("plane body truncated");
        }
        let mins = &bytes[8..8 + 4 * nb];
        let offs = &bytes[8 + 4 * nb..8 + 8 * nb];
        let widths = &bytes[8 + 8 * nb..8 + 8 * nb + nb];
        let payload = &bytes[8 + 8 * nb + round8(nb)..8 + 8 * nb + round8(nb) + payload_len];
        let plane = PlaneRef { n, mins, offs, widths, payload };
        for (b, &width) in widths.iter().enumerate() {
            let w = width as usize;
            if w > 4 {
                return Err("plane block width out of range");
            }
            let blk_len = plane.block_len(b);
            let off = read_u32_le(offs, 4 * b) as usize;
            if off + blk_len * w > payload_len {
                return Err("plane block payload out of bounds");
            }
        }
        Ok((plane, total))
    }

    /// Number of values in the plane.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plane holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn block_len(&self, b: usize) -> usize {
        (self.n - b * BLOCK).min(BLOCK)
    }

    #[inline]
    fn block_meta(&self, b: usize) -> (u32, usize, usize) {
        (
            read_u32_le(self.mins, 4 * b),
            read_u32_le(self.offs, 4 * b) as usize,
            self.widths[b] as usize,
        )
    }

    /// Random access: decode the value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.n);
        let (min, off, w) = self.block_meta(i >> 10);
        let j = i & (BLOCK - 1);
        let at = off + j * w;
        let d = match w {
            0 => 0,
            1 => self.payload[at] as u32,
            2 => u16::from_le_bytes([self.payload[at], self.payload[at + 1]]) as u32,
            3 => u32::from_le_bytes([
                self.payload[at],
                self.payload[at + 1],
                self.payload[at + 2],
                0,
            ]),
            _ => read_u32_le(self.payload, at),
        };
        min.wrapping_add(d)
    }

    /// Decode `out.len()` consecutive values starting at absolute
    /// position `pos`; the span must not cross a block boundary (the
    /// scan kernels chunk to block boundaries, so the inner loops here
    /// are fixed-width and branch-free — autovectorization fodder).
    #[inline]
    pub fn decode_in_block(&self, pos: usize, out: &mut [u32]) {
        let len = out.len();
        if len == 0 {
            return;
        }
        debug_assert!(pos + len <= self.n);
        debug_assert!((pos & !(BLOCK - 1)) == ((pos + len - 1) & !(BLOCK - 1)));
        let (min, off, w) = self.block_meta(pos >> 10);
        let j = pos & (BLOCK - 1);
        let at = off + j * w;
        match w {
            0 => out.fill(min),
            1 => {
                let src = &self.payload[at..at + len];
                for k in 0..len {
                    out[k] = min.wrapping_add(src[k] as u32);
                }
            }
            2 => {
                let src = &self.payload[at..at + 2 * len];
                for k in 0..len {
                    let d = u16::from_le_bytes([src[2 * k], src[2 * k + 1]]) as u32;
                    out[k] = min.wrapping_add(d);
                }
            }
            3 => {
                let src = &self.payload[at..at + 3 * len];
                for k in 0..len {
                    let d = u32::from_le_bytes([src[3 * k], src[3 * k + 1], src[3 * k + 2], 0]);
                    out[k] = min.wrapping_add(d);
                }
            }
            _ => {
                let src = &self.payload[at..at + 4 * len];
                for k in 0..len {
                    let d = u32::from_le_bytes([
                        src[4 * k],
                        src[4 * k + 1],
                        src[4 * k + 2],
                        src[4 * k + 3],
                    ]);
                    out[k] = min.wrapping_add(d);
                }
            }
        }
    }

    /// Decode an arbitrary `range`, appending to `out` (chunked across
    /// block boundaries internally).
    pub fn decode_range_into(&self, range: Range<usize>, out: &mut Vec<u32>) {
        let base = out.len();
        out.resize(base + range.len(), 0);
        let mut pos = range.start;
        let mut written = base;
        while pos < range.end {
            let take = (BLOCK - (pos & (BLOCK - 1))).min(range.end - pos);
            self.decode_in_block(pos, &mut out[written..written + take]);
            pos += take;
            written += take;
        }
    }

    /// Decode the whole plane into an owned vector (the portable
    /// snapshot-decode path).
    pub fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n);
        self.decode_range_into(0..self.n, &mut out);
        out
    }

    /// Sum the values in `range` — the range-scan bench kernel over the
    /// `start` plane; reads ~`w` bytes per element instead of 12.
    pub fn sum_range(&self, range: Range<usize>) -> u64 {
        let mut sum = 0u64;
        let mut pos = range.start;
        let mut buf = [0u32; BLOCK];
        while pos < range.end {
            let take = (BLOCK - (pos & (BLOCK - 1))).min(range.end - pos);
            let chunk = &mut buf[..take];
            self.decode_in_block(pos, chunk);
            sum += chunk.iter().map(|&v| v as u64).sum::<u64>();
            pos += take;
        }
        sum
    }
}

/// Owning form of a [`PlaneRef`] for a long-lived store column: the
/// subslices captured as `Col` parts (owned bytes, or raw parts into
/// the mapping the store keeps alive — same contract as every other
/// mapped column).
#[derive(Debug)]
pub struct PlaneCol {
    n: usize,
    mins: Col<u8>,
    offs: Col<u8>,
    widths: Col<u8>,
    payload: Col<u8>,
}

impl PlaneCol {
    /// Capture a parsed mapped plane as column parts.
    pub(crate) fn from_ref(r: PlaneRef<'_>) -> Self {
        PlaneCol {
            n: r.n,
            mins: Col::from_mapped_slice(r.mins),
            offs: Col::from_mapped_slice(r.offs),
            widths: Col::from_mapped_slice(r.widths),
            payload: Col::from_mapped_slice(r.payload),
        }
    }

    /// Borrow back the zero-copy view the codecs operate on.
    #[inline]
    pub fn as_ref(&self) -> PlaneRef<'_> {
        PlaneRef {
            n: self.n,
            mins: &self.mins,
            offs: &self.offs,
            widths: &self.widths,
            payload: &self.payload,
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Append a `DLabel` column as three concatenated FOR planes
/// (`start`, `end − start`, `level`), returning the encoded length.
pub fn encode_label_planes(
    starts: &[u32],
    extents: &[u32],
    levels: &[u32],
    out: &mut Vec<u8>,
) -> usize {
    assert_eq!(starts.len(), extents.len());
    assert_eq!(starts.len(), levels.len());
    let a = encode_plane(starts, out);
    let b = encode_plane(extents, out);
    let c = encode_plane(levels, out);
    a + b + c
}

/// Parsed view of a packed `DLabel` column: three FOR planes over the
/// same positions.
#[derive(Clone, Copy, Debug)]
pub struct LabelPlanesRef<'a> {
    /// `start` per position.
    pub starts: PlaneRef<'a>,
    /// `end − start` per position.
    pub extents: PlaneRef<'a>,
    /// `level` per position (values fit `u16`).
    pub levels: PlaneRef<'a>,
}

impl<'a> LabelPlanesRef<'a> {
    /// Parse three concatenated planes, each validated against
    /// `expect_n`. Returns the view and total bytes consumed.
    pub fn parse(bytes: &'a [u8], expect_n: usize) -> Result<(Self, usize), PlaneError> {
        let (starts, a) = PlaneRef::parse(bytes, expect_n)?;
        let (extents, b) = PlaneRef::parse(&bytes[a..], expect_n)?;
        let (levels, c) = PlaneRef::parse(&bytes[a + b..], expect_n)?;
        Ok((LabelPlanesRef { starts, extents, levels }, a + b + c))
    }

    /// Number of labels.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when the column holds no labels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// Owning form of [`LabelPlanesRef`].
#[derive(Debug)]
pub struct LabelPlanesCol {
    /// `start` plane.
    pub starts: PlaneCol,
    /// `end − start` plane.
    pub extents: PlaneCol,
    /// `level` plane.
    pub levels: PlaneCol,
}

impl LabelPlanesCol {
    /// Capture a parsed mapped label column as column parts.
    pub(crate) fn from_ref(r: LabelPlanesRef<'_>) -> Self {
        LabelPlanesCol {
            starts: PlaneCol::from_ref(r.starts),
            extents: PlaneCol::from_ref(r.extents),
            levels: PlaneCol::from_ref(r.levels),
        }
    }

    /// Borrow back the zero-copy view.
    #[inline]
    pub fn as_ref(&self) -> LabelPlanesRef<'_> {
        LabelPlanesRef {
            starts: self.starts.as_ref(),
            extents: self.extents.as_ref(),
            levels: self.levels.as_ref(),
        }
    }

    /// Number of labels.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when the column holds no labels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// Append a bit-packed plane for `values` to `out`, returning the
/// encoded length (a multiple of 8). Layout: `[n: u32][bits: u32]`
/// then `ceil(n·bits / 8)` payload bytes, rounded up to a multiple of
/// 8, **plus 8 slack bytes** so the reader's unaligned `u64` window at
/// the final value never leaves the buffer.
pub fn encode_bitpacked(values: &[u32], out: &mut Vec<u8>) -> usize {
    let n = values.len();
    let max = values.iter().copied().max().unwrap_or(0);
    let bits = 32 - max.leading_zeros().min(31); // ∈ 1..=32
    let payload_len = round8((n * bits as usize).div_ceil(8)) + 8;
    let base = out.len();
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&bits.to_le_bytes());
    out.resize(base + 8 + payload_len, 0);
    let payload = &mut out[base + 8..];
    for (i, &v) in values.iter().enumerate() {
        let bitoff = i * bits as usize;
        let at = bitoff >> 3;
        let mut window = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        window |= (v as u64) << (bitoff & 7);
        payload[at..at + 8].copy_from_slice(&window.to_le_bytes());
    }
    8 + payload_len
}

/// A parsed, structurally-validated view of one bit-packed plane.
#[derive(Clone, Copy, Debug)]
pub struct BitpackRef<'a> {
    n: usize,
    bits: u32,
    payload: &'a [u8],
}

impl<'a> BitpackRef<'a> {
    /// Parse a bit-packed plane at the start of `bytes`, validating
    /// against the expected value count. Returns the view and bytes
    /// consumed.
    pub fn parse(bytes: &'a [u8], expect_n: usize) -> Result<(Self, usize), PlaneError> {
        if bytes.len() < 8 {
            return Err("bitpack header truncated");
        }
        let n = read_u32_le(bytes, 0) as usize;
        let bits = read_u32_le(bytes, 4);
        if n != expect_n {
            return Err("bitpack value count disagrees with snapshot header");
        }
        if bits == 0 || bits > 32 {
            return Err("bitpack width out of range");
        }
        let payload_len = round8((n * bits as usize).div_ceil(8)) + 8;
        if bytes.len() < 8 + payload_len {
            return Err("bitpack body truncated");
        }
        Ok((BitpackRef { n, bits, payload: &bytes[8..8 + payload_len] }, 8 + payload_len))
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Random access: the value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.n);
        let bitoff = i * self.bits as usize;
        let at = bitoff >> 3;
        let window = u64::from_le_bytes(self.payload[at..at + 8].try_into().unwrap());
        let mask = (1u64 << self.bits) - 1;
        ((window >> (bitoff & 7)) & mask) as u32
    }

    /// Decode `range`, appending to `out`.
    pub fn decode_range_into(&self, range: Range<usize>, out: &mut Vec<u32>) {
        debug_assert!(range.end <= self.n);
        out.reserve(range.len());
        for i in range {
            out.push(self.get(i));
        }
    }

    /// Decode the whole plane into an owned vector.
    pub fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n);
        self.decode_range_into(0..self.n, &mut out);
        out
    }
}

/// Owning form of a [`BitpackRef`] for a long-lived store column.
#[derive(Debug)]
pub struct BitpackCol {
    n: usize,
    bits: u32,
    payload: Col<u8>,
}

impl BitpackCol {
    /// Capture a parsed mapped bit-packed plane as column parts.
    pub(crate) fn from_ref(r: BitpackRef<'_>) -> Self {
        BitpackCol { n: r.n, bits: r.bits, payload: Col::from_mapped_slice(r.payload) }
    }

    /// Borrow back the zero-copy view.
    #[inline]
    pub fn as_ref(&self) -> BitpackRef<'_> {
        BitpackRef { n: self.n, bits: self.bits, payload: &self.payload }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plane holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_plane(values: &[u32]) {
        let mut bytes = Vec::new();
        let len = encode_plane(values, &mut bytes);
        assert_eq!(len, bytes.len());
        assert_eq!(len % 8, 0, "planes stay 8-aligned");
        let (plane, consumed) = PlaneRef::parse(&bytes, values.len()).unwrap();
        assert_eq!(consumed, len);
        assert_eq!(plane.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(plane.get(i), v, "get({i})");
        }
        let expect: u64 = values.iter().map(|&v| v as u64).sum();
        assert_eq!(plane.sum_range(0..values.len()), expect);
    }

    #[test]
    fn plane_round_trips_across_shapes() {
        roundtrip_plane(&[]);
        roundtrip_plane(&[7]);
        roundtrip_plane(&[5; 4000]); // constant ⇒ w = 0 everywhere
        roundtrip_plane(&(0..1024u32).collect::<Vec<_>>()); // exact block
        roundtrip_plane(&(0..1025u32).collect::<Vec<_>>()); // boundary + 1
        roundtrip_plane(&(0..5000u32).map(|i| i * 3 + 100).collect::<Vec<_>>());
        roundtrip_plane(&[0, u32::MAX, 1, u32::MAX - 1]); // w = 4
        roundtrip_plane(&(0..3000u32).map(|i| i.wrapping_mul(2654435761) >> 7).collect::<Vec<_>>());
    }

    #[test]
    fn plane_widths_narrow_per_block() {
        // First block constant, second block spans a byte, third spans
        // a u16, fourth needs 3 bytes: sizes reflect per-block widths.
        let mut values = vec![9u32; BLOCK];
        values.extend((0..BLOCK as u32).map(|i| 1000 + (i & 0xff)));
        values.extend((0..BLOCK as u32).map(|i| 50_000 + i * 40));
        values.extend((0..BLOCK as u32).map(|i| i * 10_000));
        let mut bytes = Vec::new();
        encode_plane(&values, &mut bytes);
        let (plane, _) = PlaneRef::parse(&bytes, values.len()).unwrap();
        assert_eq!(plane.widths, &[0, 1, 2, 3]);
        assert_eq!(plane.decode_all(), values);
    }

    #[test]
    fn plane_partial_range_decode_matches() {
        let values: Vec<u32> = (0..4100u32).map(|i| i.wrapping_mul(2654435761) >> 6).collect();
        let mut bytes = Vec::new();
        encode_plane(&values, &mut bytes);
        let (plane, _) = PlaneRef::parse(&bytes, values.len()).unwrap();
        for range in [0..0, 0..1, 1023..1025, 100..3100, 4095..4100, 2048..2048] {
            let mut out = Vec::new();
            plane.decode_range_into(range.clone(), &mut out);
            assert_eq!(out, &values[range.clone()], "{range:?}");
            let expect: u64 = values[range.clone()].iter().map(|&v| v as u64).sum();
            assert_eq!(plane.sum_range(range.clone()), expect, "{range:?}");
        }
    }

    #[test]
    fn plane_structural_corruption_is_typed() {
        let values: Vec<u32> = (0..2000u32).collect();
        let mut bytes = Vec::new();
        encode_plane(&values, &mut bytes);
        // Too short for the header.
        assert!(PlaneRef::parse(&bytes[..4], 2000).is_err());
        // Count disagreement.
        assert!(PlaneRef::parse(&bytes, 1999).is_err());
        // Truncated body.
        assert!(PlaneRef::parse(&bytes[..bytes.len() - 9], 2000).is_err());
        // Width out of range.
        let mut bad = bytes.clone();
        bad[8 + 8 * 2] = 9; // widths[0] (nb = 2)
        assert_eq!(
            PlaneRef::parse(&bad, 2000).unwrap_err(),
            "plane block width out of range"
        );
        // Block offset pointing past the payload.
        let mut bad = bytes.clone();
        bad[8 + 4 * 2..8 + 4 * 2 + 4].copy_from_slice(&u32::MAX.to_le_bytes()); // offs[0]
        assert_eq!(
            PlaneRef::parse(&bad, 2000).unwrap_err(),
            "plane block payload out of bounds"
        );
    }

    #[test]
    fn label_planes_round_trip() {
        let n = 2500u32;
        let starts: Vec<u32> = (0..n).map(|i| i * 2).collect();
        let extents: Vec<u32> = (0..n).map(|i| (i % 7) * 3).collect();
        let levels: Vec<u32> = (0..n).map(|i| i % 12).collect();
        let mut bytes = Vec::new();
        let len = encode_label_planes(&starts, &extents, &levels, &mut bytes);
        assert_eq!(len, bytes.len());
        let (planes, consumed) = LabelPlanesRef::parse(&bytes, n as usize).unwrap();
        assert_eq!(consumed, len);
        assert_eq!(planes.len(), n as usize);
        assert_eq!(planes.starts.decode_all(), starts);
        assert_eq!(planes.extents.decode_all(), extents);
        assert_eq!(planes.levels.decode_all(), levels);
    }

    fn roundtrip_bitpack(values: &[u32]) {
        let mut bytes = Vec::new();
        let len = encode_bitpacked(values, &mut bytes);
        assert_eq!(len, bytes.len());
        assert_eq!(len % 8, 0);
        let (plane, consumed) = BitpackRef::parse(&bytes, values.len()).unwrap();
        assert_eq!(consumed, len);
        assert_eq!(plane.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(plane.get(i), v, "get({i})");
        }
    }

    #[test]
    fn bitpack_round_trips_across_widths() {
        roundtrip_bitpack(&[]);
        roundtrip_bitpack(&[0, 0, 0]); // bits = 1 floor
        roundtrip_bitpack(&[0, 1, 1, 0, 1]);
        roundtrip_bitpack(&(0..100u32).map(|i| i % 37).collect::<Vec<_>>()); // 6 bits
        roundtrip_bitpack(&(0..997u32).collect::<Vec<_>>()); // 10 bits
        roundtrip_bitpack(&[u32::MAX, 0, 123456789]); // 32 bits
    }

    #[test]
    fn bitpack_structural_corruption_is_typed() {
        let values: Vec<u32> = (0..300u32).collect();
        let mut bytes = Vec::new();
        encode_bitpacked(&values, &mut bytes);
        assert!(BitpackRef::parse(&bytes[..7], 300).is_err());
        assert!(BitpackRef::parse(&bytes, 299).is_err());
        assert!(BitpackRef::parse(&bytes[..bytes.len() - 1], 300).is_err());
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&33u32.to_le_bytes());
        assert_eq!(BitpackRef::parse(&bad, 300).unwrap_err(), "bitpack width out of range");
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(BitpackRef::parse(&bad, 300).is_err());
    }

    #[test]
    fn owning_columns_serve_the_same_views() {
        let values: Vec<u32> = (0..2048u32).map(|i| i * 5 + 17).collect();
        let mut bytes = Vec::new();
        encode_plane(&values, &mut bytes);
        let (plane, _) = PlaneRef::parse(&bytes, values.len()).unwrap();
        let col = PlaneCol::from_ref(plane);
        assert_eq!(col.len(), values.len());
        assert_eq!(col.as_ref().decode_all(), values);

        let tags: Vec<u32> = (0..512u32).map(|i| i % 23).collect();
        let mut tb = Vec::new();
        encode_bitpacked(&tags, &mut tb);
        let (bp, _) = BitpackRef::parse(&tb, tags.len()).unwrap();
        let bcol = BitpackCol::from_ref(bp);
        assert_eq!(bcol.len(), tags.len());
        assert_eq!(bcol.as_ref().decode_all(), tags);
    }
}
