//! Model-based property tests: the B+ tree must behave exactly like
//! `std::collections::BTreeMap` under random workloads.

use blas_storage::BPlusTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn matches_btreemap_under_random_inserts(ops in prop::collection::vec((0u32..500, 0u64..1000), 0..600)) {
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        for (k, v) in ops {
            prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
            prop_assert_eq!(tree.len(), model.len());
        }
        for k in 0u32..500 {
            prop_assert_eq!(tree.get(&k), model.get(&k));
        }
        let tree_all: Vec<(u32, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let model_all: Vec<(u32, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree_all, model_all);
    }

    #[test]
    fn range_matches_btreemap(keys in prop::collection::btree_set(0u32..2000, 0..400), lo in 0u32..2000, hi in 0u32..2000) {
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k as u64);
            model.insert(k, k as u64);
        }
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let tree_range: Vec<u32> = tree.range(&lo, &hi).map(|(k, _)| *k).collect();
        let model_range: Vec<u32> = model.range(lo..=hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(tree_range, model_range);
    }

    #[test]
    fn composite_key_ranges(entries in prop::collection::btree_set((0u128..40, 0u32..40), 0..300), plabel in 0u128..40) {
        let mut tree: BPlusTree<(u128, u32), ()> = BPlusTree::new();
        for &k in &entries {
            tree.insert(k, ());
        }
        let got: Vec<(u128, u32)> = tree
            .range(&(plabel, 0), &(plabel, u32::MAX))
            .map(|(k, _)| *k)
            .collect();
        let expected: Vec<(u128, u32)> = entries
            .iter()
            .copied()
            .filter(|(p, _)| *p == plabel)
            .collect();
        prop_assert_eq!(got, expected);
    }
}
