//! Property tests for the columnar SP/SD clustered layout: on random
//! small documents, the run-directory scans must yield *identical*
//! tuple sequences to (a) a naive filtered full scan sorted by the
//! clustering key and (b) the retained B+-tree reference path, and a
//! snapshot round-trip through `encode_store` must reproduce the store
//! byte-for-byte at the scan level.

use blas_labeling::{label_document, DLabel};
use blas_storage::{snapshot, MappedBytes, NodeRecord, NodeStore, RowId, ScanRun};
use blas_xml::{Document, TagId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const NUM_TAGS: u32 = 5;

/// Random small XML document over tags t0..t4 with occasional text
/// drawn from a tiny value alphabet (forcing intern collisions).
fn xml_doc() -> impl Strategy<Value = String> {
    let leaf = (0u32..NUM_TAGS, prop::option::of("[uvw]")).prop_map(|(t, txt)| match txt {
        Some(s) => format!("<t{t}>{s}</t{t}>"),
        None => format!("<t{t}/>"),
    });
    leaf.prop_recursive(4, 48, 4, |inner| {
        ((0u32..NUM_TAGS), prop::collection::vec(inner, 0..4))
            .prop_map(|(t, kids)| format!("<t{t}>{}</t{t}>", kids.concat()))
    })
}

fn build(src: &str) -> (Document, NodeStore) {
    let doc = Document::parse(src).unwrap();
    let labels = label_document(&doc).unwrap();
    let store = NodeStore::build(&doc, &labels);
    (doc, store)
}

/// One scan element, fully resolved so sequence comparison covers every
/// column (label, row identity, data value).
type Row = (u32, DLabel, Option<String>);

fn resolve(store: &NodeStore, row: u32, label: DLabel, value_id: u32) -> Row {
    (row, label, store.value(value_id).map(str::to_string))
}

/// Naive oracle: full scan, filter by plabel interval, sort by
/// (plabel, start).
fn naive_plabel_range(store: &NodeStore, p1: u128, p2: u128) -> Vec<Row> {
    let mut hits: Vec<(u128, Row)> = store
        .scan_all()
        .filter(|(_, r)| p1 <= r.plabel && r.plabel <= p2)
        .map(|(row, r)| (r.plabel, (row.0, r.dlabel(), r.data.map(str::to_string))))
        .collect();
    hits.sort_by_key(|(plabel, (_, d, _))| (*plabel, d.start));
    hits.into_iter().map(|(_, row)| row).collect()
}

/// Naive oracle: full scan, filter by tag, sort by start.
fn naive_tag(store: &NodeStore, tag: TagId) -> Vec<Row> {
    let mut hits: Vec<Row> = store
        .scan_all()
        .filter(|(_, r)| r.tag == tag)
        .map(|(row, r)| (row.0, r.dlabel(), r.data.map(str::to_string)))
        .collect();
    hits.sort_by_key(|(_, d, _)| d.start);
    hits
}

/// Resolve every position of a scan run (raw or packed) through the
/// store: row identity via `row_at`, labels via the decode kernel,
/// value ids via the document-order column.
fn resolve_run(store: &NodeStore, run: &ScanRun<'_>) -> Vec<Row> {
    let mut labels = Vec::new();
    run.decode_labels_into(&mut labels);
    (0..run.len())
        .map(|i| {
            let row = run.row_at(i);
            resolve(store, row, labels[i], store.value_id_of_row(RowId(row)))
        })
        .collect()
}

fn columnar_plabel_range(store: &NodeStore, p1: u128, p2: u128) -> Vec<Row> {
    store
        .scan_plabel_range(p1, p2)
        .flat_map(|run| resolve_run(store, &run))
        .collect()
}

fn columnar_tag(store: &NodeStore, tag: TagId) -> Vec<Row> {
    resolve_run(store, &store.scan_tag(tag))
}

proptest! {
    /// The SP run-directory scan equals the naive filtered scan and the
    /// B+-tree reference scan, for ranges anchored at actual P-labels.
    #[test]
    fn plabel_range_scan_matches_naive_and_reference(src in xml_doc(), a in 0usize..64, b in 0usize..64) {
        let (_, store) = build(&src);
        let plabels: Vec<u128> = store.scan_all().map(|(_, r)| r.plabel).collect();
        let (mut p1, mut p2) = (plabels[a % plabels.len()], plabels[b % plabels.len()]);
        if p1 > p2 {
            std::mem::swap(&mut p1, &mut p2);
        }
        let fast = columnar_plabel_range(&store, p1, p2);
        prop_assert_eq!(&fast, &naive_plabel_range(&store, p1, p2));
        let reference: Vec<(u32, DLabel)> =
            store.ref_scan_plabel_range(p1, p2).map(|(row, l)| (row.0, l)).collect();
        let fast_rl: Vec<(u32, DLabel)> = fast.iter().map(|(row, l, _)| (*row, *l)).collect();
        prop_assert_eq!(fast_rl, reference);
        // Full-domain range covers every tuple exactly once.
        prop_assert_eq!(
            columnar_plabel_range(&store, 0, u128::MAX).len(),
            store.len()
        );
    }

    /// The SD run-directory scan equals the naive filtered scan and the
    /// B+-tree reference scan, for every tag (plus an absent tag).
    #[test]
    fn tag_scan_matches_naive_and_reference(src in xml_doc()) {
        let (doc, store) = build(&src);
        for (tag, _) in doc.tags().iter() {
            let fast = columnar_tag(&store, tag);
            prop_assert_eq!(&fast, &naive_tag(&store, tag));
            let reference: Vec<(u32, DLabel)> =
                store.ref_scan_tag(tag).map(|(row, l)| (row.0, l)).collect();
            let fast_rl: Vec<(u32, DLabel)> = fast.iter().map(|(row, l, _)| (*row, *l)).collect();
            prop_assert_eq!(fast_rl, reference);
        }
        prop_assert!(columnar_tag(&store, TagId(NUM_TAGS + 9)).is_empty());
    }

    /// Equality scans are single contiguous runs in start order, and
    /// `row_of_start` resolves every scanned label.
    #[test]
    fn eq_scans_are_contiguous_start_ordered(src in xml_doc()) {
        let (_, store) = build(&src);
        let mut seen = 0usize;
        for (_, r) in store.scan_all().collect::<Vec<_>>() {
            let run = store.scan_plabel_eq(r.plabel);
            prop_assert!(!run.is_empty());
            let mut labels = Vec::new();
            run.decode_labels_into(&mut labels);
            prop_assert!(labels.windows(2).all(|w| w[0].start < w[1].start));
            for label in &labels {
                let row = store.row_of_start(label.start).expect("label resolves");
                prop_assert_eq!(store.record(row).dlabel(), *label);
            }
            seen += 1;
        }
        prop_assert_eq!(seen, store.len());
    }

    /// Snapshot → restore through `encode_store` reproduces identical
    /// scan sequences (the columnar persistence path end to end).
    #[test]
    fn snapshot_roundtrip_preserves_scans(src in xml_doc()) {
        let (doc, store) = build(&src);
        let tag_names: Vec<String> =
            doc.tags().iter().map(|(_, n)| n.to_string()).collect();
        let bytes = snapshot::encode_store(&store, &tag_names, 7, 3);
        let snap = snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(&snap.tag_names, &tag_names);
        let restored = NodeStore::from_records(snap.records);
        prop_assert_eq!(restored.len(), store.len());
        prop_assert_eq!(
            columnar_plabel_range(&restored, 0, u128::MAX),
            columnar_plabel_range(&store, 0, u128::MAX)
        );
        for (tag, _) in doc.tags().iter() {
            prop_assert_eq!(columnar_tag(&restored, tag), columnar_tag(&store, tag));
        }
        // Encoding the restored store is byte-identical (stable format).
        let bytes2 = snapshot::encode_store(&restored, &tag_names, 7, 3);
        prop_assert_eq!(bytes, bytes2);
    }

    /// Mapped-vs-owned equivalence: a store served in place from its
    /// snapshot mapping yields the same records, the same clustered
    /// scan sequences (both clusterings), the same sharded partitions
    /// and the same value lookups as the owned store it was written
    /// from — over random documents.
    #[test]
    fn mapped_store_equals_owned_store(src in xml_doc()) {
        let (doc, owned) = build(&src);
        let tag_names: Vec<String> =
            doc.tags().iter().map(|(_, n)| n.to_string()).collect();
        let bytes = snapshot::encode_store(&owned, &tag_names, 7, 3);
        let (mapped, path) = open_mapped_store(&bytes);
        prop_assert_eq!(mapped.len(), owned.len());
        prop_assert_eq!(mapped.sp_run_count(), owned.sp_run_count());
        prop_assert_eq!(mapped.sd_run_count(), owned.sd_run_count());
        // Every record, via both the row and the start-rank path.
        for (row, r) in owned.scan_all() {
            prop_assert_eq!(mapped.record(row), r);
            prop_assert_eq!(mapped.row_of_start(r.start), Some(row));
        }
        // Clustered scans: identical rows, labels and value ids.
        prop_assert_eq!(
            columnar_plabel_range(&mapped, 0, u128::MAX),
            columnar_plabel_range(&owned, 0, u128::MAX)
        );
        for (tag, _) in doc.tags().iter() {
            prop_assert_eq!(columnar_tag(&mapped, tag), columnar_tag(&owned, tag));
        }
        // Sharded partitions over mapped runs cover the same tuples.
        for shards in [2usize, 3, 7] {
            let a: usize = mapped
                .shard_plabel_range(0, u128::MAX, shards)
                .iter()
                .flatten()
                .map(|r| r.len())
                .sum();
            prop_assert_eq!(a, owned.len());
        }
        // Value interning machinery.
        for v in ["u", "v", "w", "absent"] {
            prop_assert_eq!(mapped.value_id(v), owned.value_id(v));
            prop_assert_eq!(mapped.scan_value(v).count(), owned.scan_value(v).count());
        }
        drop(mapped);
        std::fs::remove_file(path).unwrap();
    }
}

/// Write snapshot bytes to a unique temp file and open them mapped.
fn open_mapped_store(bytes: &[u8]) -> (NodeStore, std::path::PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "blas_prop_mapped_{}_{}.snap",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    let (store, _meta) = NodeStore::from_mapped(MappedBytes::open(&path).unwrap()).unwrap();
    assert!(store.is_mapped());
    (store, path)
}

/// Non-property regression: records built out of start order cluster
/// correctly (from_records sorts).
#[test]
fn from_records_out_of_order_input() {
    let recs = vec![
        NodeRecord { plabel: 3, start: 4, end: 5, level: 2, tag: TagId(1), data: None },
        NodeRecord { plabel: 9, start: 0, end: 7, level: 1, tag: TagId(0), data: Some("x".into()) },
        NodeRecord { plabel: 3, start: 1, end: 2, level: 2, tag: TagId(1), data: Some("x".into()) },
    ];
    let store = NodeStore::from_records(recs);
    let starts: Vec<u32> = (0..store.len()).map(|i| store.record(RowId(i as u32)).start).collect();
    assert_eq!(starts, [0, 1, 4]);
    let run = store.scan_plabel_eq(3);
    assert_eq!(run.len(), 2);
    assert!(run.label_at(0).start < run.label_at(1).start);
}
