//! Recursive-descent parser for the tree-query subset.
//!
//! Grammar (whitespace insignificant between tokens):
//!
//! ```text
//! query     := ('/' | '//') step (('/' | '//') step)* ('=' literal)?
//! step      := nodetest predicate*
//! nodetest  := NAME | '*'
//! predicate := '[' conj ']'
//! conj      := relterm ('and' relterm)*
//! relterm   := relpath ('=' literal)?
//! relpath   := ('//')? step (('/' | '//') step)*
//! literal   := '\'' ... '\'' | '"' ... '"'
//! ```
//!
//! A relative path inside a predicate starts with an implicit child
//! axis unless written with `//`. The value comparison attaches to the
//! last step of its path (the quoted leaves of Fig. 3).

use crate::ast::{Axis, NodeTest, QNode, QNodeId, QueryTree};
use std::fmt;

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset in the query string.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath syntax error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XPathError {}

/// Bound on `[` nesting. Predicates are the parser's only recursion
/// (`parse_step → parse_conj → parse_path → parse_step`), so without a
/// bound a string like `/a[a[a[…` drives stack depth linearly in input
/// length — and a stack overflow aborts the process, which no serving
/// layer can catch. 64 is far beyond any meaningful query.
const MAX_PREDICATE_DEPTH: usize = 64;

/// Parse `input` into a [`QueryTree`].
///
/// Total over arbitrary (untrusted) input: every malformed string is a
/// typed [`XPathError`], never a panic or unbounded recursion — the
/// property `tests/prop_parser.rs` fuzzes.
pub fn parse(input: &str) -> Result<QueryTree, XPathError> {
    let mut p = Parser { input, pos: 0, nodes: Vec::new(), depth: 0 };
    p.skip_ws();
    let axis = p.parse_axis()?.ok_or_else(|| p.error("query must start with '/' or '//'"))?;
    let (first, last) = p.parse_path(axis, None)?;
    p.skip_ws();
    if p.pos < input.len() {
        return Err(p.error("trailing input after query"));
    }
    Ok(QueryTree::from_parts(p.nodes, first, last))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    nodes: Vec<QNode>,
    /// Current `[` nesting, capped at [`MAX_PREDICATE_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> XPathError {
        XPathError { pos: self.pos, msg: msg.to_string() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    /// Parse `//` or `/` if present.
    fn parse_axis(&mut self) -> Result<Option<Axis>, XPathError> {
        self.skip_ws();
        if self.eat("//") {
            Ok(Some(Axis::Descendant))
        } else if self.eat("/") {
            Ok(Some(Axis::Child))
        } else {
            Ok(None)
        }
    }

    fn alloc(&mut self, node: QNode) -> QNodeId {
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Parse a path starting with the given axis; returns (first, last)
    /// node ids. `parent` is the step the path hangs off (None for the
    /// query root).
    fn parse_path(
        &mut self,
        first_axis: Axis,
        parent: Option<QNodeId>,
    ) -> Result<(QNodeId, QNodeId), XPathError> {
        let first = self.parse_step(first_axis, parent)?;
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(first);
        }
        let mut last = first;
        while let Some(axis) = self.parse_axis()? {
            let id = self.parse_step(axis, Some(last))?;
            self.nodes[last.index()].children.push(id);
            last = id;
        }
        // Optional trailing value comparison.
        self.skip_ws();
        if self.eat("=") {
            let lit = self.parse_literal()?;
            self.nodes[last.index()].value_eq = Some(lit);
        }
        Ok((first, last))
    }

    /// Parse one step: nodetest + predicates.
    fn parse_step(&mut self, axis: Axis, parent: Option<QNodeId>) -> Result<QNodeId, XPathError> {
        self.skip_ws();
        let test = if self.eat("*") {
            NodeTest::Wildcard
        } else {
            NodeTest::Tag(self.parse_name()?)
        };
        let id = self.alloc(QNode { axis, test, value_eq: None, parent, children: Vec::new() });
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            if self.depth >= MAX_PREDICATE_DEPTH {
                return Err(self.error("predicate nesting exceeds 64 levels"));
            }
            self.depth += 1;
            self.parse_conj(id)?;
            self.depth -= 1;
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.error("expected ']'"));
            }
        }
        Ok(id)
    }

    /// Parse `relterm ('and' relterm)*`, attaching each term as a
    /// predicate subtree of `owner`.
    fn parse_conj(&mut self, owner: QNodeId) -> Result<(), XPathError> {
        loop {
            let axis = self.parse_axis()?.unwrap_or(Axis::Child);
            let (first, last) = self.parse_path(axis, Some(owner))?;
            // parse_path pushed `first` into owner's children via the
            // parent linkage; ensure it really did (first's parent is
            // owner).
            debug_assert_eq!(self.nodes[first.index()].parent, Some(owner));
            let _ = last;
            self.skip_ws();
            if self.rest().starts_with("and")
                && !self.rest()[3..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
            {
                self.pos += 3;
                continue;
            }
            return Ok(());
        }
    }

    fn parse_name(&mut self) -> Result<String, XPathError> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_' || c == '@'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return Err(self.error("expected a name or '*'"));
        }
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    fn parse_literal(&mut self) -> Result<String, XPathError> {
        self.skip_ws();
        let quote = match self.rest().chars().next() {
            Some(q @ ('\'' | '"')) => q,
            _ => return Err(self.error("expected a quoted literal")),
        };
        self.pos += 1;
        let rest = self.rest();
        let end = rest
            .find(quote)
            .ok_or_else(|| self.error("unterminated literal"))?;
        let lit = rest[..end].to_string();
        self.pos += end + 1;
        Ok(lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(q: &QueryTree) -> Vec<String> {
        q.node_ids().map(|id| q.node(id).test.to_string()).collect()
    }

    #[test]
    fn simple_path() {
        let q = parse("/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE").unwrap();
        assert_eq!(q.len(), 6);
        assert_eq!(q.node(q.root()).axis, Axis::Child);
        assert_eq!(q.node(q.output()).test.tag(), Some("LINE"));
        assert!(q.node_ids().all(|id| q.node(id).axis == Axis::Child));
        assert_eq!(q.spine().len(), 6);
    }

    #[test]
    fn leading_descendant() {
        let q = parse("//category/description").unwrap();
        assert_eq!(q.node(q.root()).axis, Axis::Descendant);
        assert_eq!(q.node(q.output()).axis, Axis::Child);
    }

    #[test]
    fn interior_descendant() {
        let q = parse("/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR").unwrap();
        let spine = q.spine();
        assert_eq!(q.node(spine[3]).axis, Axis::Descendant);
        assert!(q.has_interior_descendant());
    }

    #[test]
    fn value_predicate_in_branch() {
        let q = parse("/PLAYS/PLAY/ACT/SCENE[TITLE = 'SCENE III. A public place.']//LINE").unwrap();
        let scene = q.spine()[3];
        assert_eq!(q.node(scene).test.tag(), Some("SCENE"));
        assert_eq!(q.node(scene).children.len(), 2);
        let title = q.node(scene).children[0];
        assert_eq!(q.node(title).test.tag(), Some("TITLE"));
        assert_eq!(q.node(title).value_eq.as_deref(), Some("SCENE III. A public place."));
        assert_eq!(q.node(q.output()).test.tag(), Some("LINE"));
        assert_eq!(q.node(q.output()).axis, Axis::Descendant);
    }

    #[test]
    fn trailing_value_comparison() {
        let q = parse("/ProteinDatabase/ProteinEntry//authors/author='Daniel, M.'").unwrap();
        assert_eq!(q.node(q.output()).value_eq.as_deref(), Some("Daniel, M."));
        assert_eq!(q.node(q.output()).test.tag(), Some("author"));
    }

    #[test]
    fn nested_predicates_and_conjunction() {
        let q = parse("/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name")
            .unwrap();
        assert_eq!(q.len(), 8);
        let entry = q.spine()[1];
        // children: reference (predicate) + protein (spine).
        assert_eq!(q.node(entry).children.len(), 2);
        let reference = q.node(entry).children[0];
        let refinfo = q.node(reference).children[0];
        let kids: Vec<_> = q.node(refinfo).children.iter().map(|&c| q.node(c).test.to_string()).collect();
        assert_eq!(kids, ["citation", "year"]);
        assert_eq!(q.node(q.output()).test.tag(), Some("name"));
    }

    #[test]
    fn figure2_query() {
        let q = parse(
            "/proteinDatabase/proteinEntry[protein//superfamily='cytochrome c']/reference/refinfo[//author = 'Evans, M.J.' and year = '2001']/title",
        )
        .unwrap();
        assert_eq!(q.len(), 9);
        assert_eq!(q.node(q.output()).test.tag(), Some("title"));
        let refinfo = q.spine()[3];
        assert_eq!(q.node(refinfo).test.tag(), Some("refinfo"));
        // author (descendant), year, title children.
        assert_eq!(q.node(refinfo).children.len(), 3);
        let author = q.node(refinfo).children[0];
        assert_eq!(q.node(author).axis, Axis::Descendant);
        assert_eq!(q.node(author).value_eq.as_deref(), Some("Evans, M.J."));
        let superf = {
            let entry = q.spine()[1];
            let protein = q.node(entry).children[0];
            q.node(protein).children[0]
        };
        assert_eq!(q.node(superf).test.tag(), Some("superfamily"));
        assert_eq!(q.node(superf).axis, Axis::Descendant);
        assert_eq!(q.node(superf).value_eq.as_deref(), Some("cytochrome c"));
    }

    #[test]
    fn wildcard_step() {
        let q = parse("/site/*/item").unwrap();
        assert_eq!(tags(&q), ["site", "*", "item"]);
        assert_eq!(q.node(q.spine()[1]).test, NodeTest::Wildcard);
    }

    #[test]
    fn attribute_step() {
        let q = parse("//item/@id").unwrap();
        assert_eq!(q.node(q.output()).test.tag(), Some("@id"));
    }

    #[test]
    fn double_quoted_literal() {
        let q = parse("//year = \"2001\"").unwrap();
        assert_eq!(q.node(q.output()).value_eq.as_deref(), Some("2001"));
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
            "/a/b[c]/d",
            "//site/regions//item[shipping]/description",
            "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
        ] {
            let q = parse(src).unwrap();
            let printed = q.to_string();
            let q2 = parse(&printed).unwrap();
            assert_eq!(q, q2, "{src} → {printed}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a/b").is_err(), "must start with axis");
        assert!(parse("/a[b").is_err(), "unclosed bracket");
        assert!(parse("/a = 'x").is_err(), "unterminated literal");
        assert!(parse("/a/b junk").is_err(), "trailing input");
        assert!(parse("/a//").is_err(), "dangling axis");
        assert!(parse("/a[]").is_err(), "empty predicate");
        assert!(parse("/a = 5").is_err(), "unquoted literal");
    }

    #[test]
    fn and_prefix_tag_not_conjunction() {
        // A tag starting with "and" must not be taken as the keyword.
        let q = parse("/a[b and android]").unwrap();
        let kids: Vec<_> = q
            .node(q.root())
            .children
            .iter()
            .map(|&c| q.node(c).test.to_string())
            .collect();
        assert_eq!(kids, ["b", "android"]);
    }
}
