//! # blas-xpath — the XPath tree-query subset of the BLAS paper (§2)
//!
//! The paper processes XPath queries built from child axis steps (`/`),
//! descendant axis steps (`//`), branches (`[..]`), name tests (with
//! `*` wildcards for the Unfold discussion) and value equality
//! predicates (`= 'literal'`). Such queries are trees ("tree queries",
//! §2); this crate parses them into the query-tree model of Fig. 3:
//! one node per step, darkened *output* node, edges annotated with the
//! axis, and value predicates attached to the node they constrain.

pub mod ast;
pub mod parser;

pub use ast::{Axis, NodeTest, QNode, QNodeId, QueryTree};
pub use parser::{parse, XPathError};
