//! The query-tree model of Fig. 3.

use std::fmt;

/// Axis connecting a step to its parent step (or to the document root,
/// for the first step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — child axis.
    Child,
    /// `//` — descendant axis (descendant-or-self::node()/child:: in
    /// full XPath terms; the paper treats it as "descendant").
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
        })
    }
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A tag name (attributes use the `@name` convention).
    Tag(String),
    /// `*` — any tag.
    Wildcard,
}

impl NodeTest {
    /// The tag name, if this is a name test.
    pub fn tag(&self) -> Option<&str> {
        match self {
            NodeTest::Tag(t) => Some(t),
            NodeTest::Wildcard => None,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Tag(t) => f.write_str(t),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

/// Identifier of a node in a [`QueryTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNodeId(pub u32);

impl QNodeId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One step of the query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QNode {
    /// Axis of the incoming edge (from parent step or document root).
    pub axis: Axis,
    /// Name test.
    pub test: NodeTest,
    /// Value predicate `= 'literal'` attached to this node (drawn as a
    /// quoted leaf in Fig. 3).
    pub value_eq: Option<String>,
    /// Parent step.
    pub parent: Option<QNodeId>,
    /// Child steps: predicate subtrees first, then (if the main path
    /// continues) the spine child last.
    pub children: Vec<QNodeId>,
}

/// A parsed tree query (Fig. 3): a rooted tree of steps with a
/// designated output node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTree {
    nodes: Vec<QNode>,
    root: QNodeId,
    output: QNodeId,
}

impl QueryTree {
    /// Assemble a tree from parts (used by the parser and by translator
    /// tests that build queries programmatically).
    pub fn from_parts(nodes: Vec<QNode>, root: QNodeId, output: QNodeId) -> Self {
        debug_assert!(root.index() < nodes.len() && output.index() < nodes.len());
        Self { nodes, root, output }
    }

    /// First step of the query.
    pub fn root(&self) -> QNodeId {
        self.root
    }

    /// The darkened output (return) node.
    pub fn output(&self) -> QNodeId {
        self.output
    }

    /// Borrow a step.
    pub fn node(&self, id: QNodeId) -> &QNode {
        &self.nodes[id.index()]
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty tree (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate all step ids.
    pub fn node_ids(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.nodes.len() as u32).map(QNodeId)
    }

    /// Is `id` a branching point? (More than one child, or the output
    /// node when it is internal — §2.)
    pub fn is_branching(&self, id: QNodeId) -> bool {
        let n = self.node(id);
        n.children.len() > 1 || (id == self.output && !n.children.is_empty())
    }

    /// Ids on the spine (root → output path), root first.
    pub fn spine(&self) -> Vec<QNodeId> {
        let mut path = Vec::new();
        let mut cur = Some(self.output);
        while let Some(id) = cur {
            path.push(id);
            cur = self.node(id).parent;
        }
        path.reverse();
        path
    }

    /// Does any step use a descendant axis (other than the leading one)?
    pub fn has_interior_descendant(&self) -> bool {
        self.node_ids()
            .any(|id| id != self.root && self.node(id).axis == Axis::Descendant)
    }

    /// Number of steps `l` (tags in the query) — the paper's D-join
    /// count for the baseline is `l − 1`.
    pub fn step_count(&self) -> usize {
        self.nodes.len()
    }

    /// Render one subtree back to XPath syntax.
    fn fmt_node(&self, id: QNodeId, out: &mut String, is_root_edge: bool) {
        let n = self.node(id);
        if !is_root_edge || n.axis == Axis::Descendant {
            out.push_str(&n.axis.to_string());
        } else {
            out.push('/');
        }
        out.push_str(&n.test.to_string());
        // Predicate children = all children except the spine child (the
        // last child when the spine continues through this node).
        let spine_next = self.spine_child(id);
        for &child in &n.children {
            if Some(child) == spine_next {
                continue;
            }
            out.push('[');
            self.fmt_node(child, out, false);
            // Inner fmt starts with an axis; predicates conventionally
            // drop the leading '/'.
            out.push(']');
        }
        if let Some(v) = &n.value_eq {
            out.push_str(" = '");
            out.push_str(v);
            out.push('\'');
        }
        if let Some(next) = spine_next {
            self.fmt_node(next, out, false);
        }
    }

    /// The child of `id` that lies on the spine, if any.
    pub fn spine_child(&self, id: QNodeId) -> Option<QNodeId> {
        let spine = self.spine();
        let pos = spine.iter().position(|&s| s == id)?;
        spine.get(pos + 1).copied()
    }

    /// A copy with every value predicate removed — the query form used
    /// for the holistic twig join experiments (§5.3.1: "we therefore
    /// removed value predicates from the queries").
    pub fn without_value_predicates(&self) -> QueryTree {
        let nodes = self
            .nodes
            .iter()
            .map(|n| QNode { value_eq: None, ..n.clone() })
            .collect();
        QueryTree::from_parts(nodes, self.root, self.output)
    }
}

impl fmt::Display for QueryTree {
    /// Canonical XPath rendering. Predicate subtrees print with a
    /// leading axis (`[/a/b]` prints as `[a/b]` is *not* attempted; we
    /// keep the explicit form for round-trip fidelity).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.fmt_node(self.root, &mut out, true);
        // Normalize "[/x" to "[x": predicates re-parse identically.
        let out = out.replace("[//", "\u{0}").replace("[/", "[").replace('\u{0}', "[//");
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build /a/b[c]/d by hand.
    fn sample() -> QueryTree {
        let nodes = vec![
            QNode {
                axis: Axis::Child,
                test: NodeTest::Tag("a".into()),
                value_eq: None,
                parent: None,
                children: vec![QNodeId(1)],
            },
            QNode {
                axis: Axis::Child,
                test: NodeTest::Tag("b".into()),
                value_eq: None,
                parent: Some(QNodeId(0)),
                children: vec![QNodeId(2), QNodeId(3)],
            },
            QNode {
                axis: Axis::Child,
                test: NodeTest::Tag("c".into()),
                value_eq: None,
                parent: Some(QNodeId(1)),
                children: vec![],
            },
            QNode {
                axis: Axis::Child,
                test: NodeTest::Tag("d".into()),
                value_eq: None,
                parent: Some(QNodeId(1)),
                children: vec![],
            },
        ];
        QueryTree::from_parts(nodes, QNodeId(0), QNodeId(3))
    }

    #[test]
    fn spine_walks_root_to_output() {
        let q = sample();
        assert_eq!(q.spine(), [QNodeId(0), QNodeId(1), QNodeId(3)]);
        assert_eq!(q.spine_child(QNodeId(1)), Some(QNodeId(3)));
        assert_eq!(q.spine_child(QNodeId(2)), None);
    }

    #[test]
    fn branching_points() {
        let q = sample();
        assert!(!q.is_branching(QNodeId(0)));
        assert!(q.is_branching(QNodeId(1)));
        assert!(!q.is_branching(QNodeId(3)));
    }

    #[test]
    fn display_round_trip_shape() {
        let q = sample();
        assert_eq!(q.to_string(), "/a/b[c]/d");
    }

    #[test]
    fn interior_descendant_detection() {
        let mut q = sample();
        assert!(!q.has_interior_descendant());
        q.nodes[3].axis = Axis::Descendant;
        assert!(q.has_interior_descendant());
    }
}
