//! Property tests for the XPath parser: display round-trips, spine
//! invariants, and no-panic robustness.

use blas_xpath::{parse, QueryTree};
use proptest::prelude::*;

const TAGS: &[&str] = &["a", "b", "item", "name", "x1"];

/// Random well-formed query text.
fn query_text() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        0usize..TAGS.len(),
        prop::option::of((prop::bool::ANY, 0usize..TAGS.len(), prop::option::of("[a-z]{1,4}"))),
    );
    (prop::collection::vec(step, 1..5), prop::option::of("[a-z]{1,4}")).prop_map(
        |(steps, trailing)| {
            let mut out = String::new();
            let last = steps.len() - 1;
            for (i, (deep, tag, pred)) in steps.into_iter().enumerate() {
                out.push_str(if deep { "//" } else { "/" });
                out.push_str(TAGS[tag]);
                if let Some((pdeep, ptag, pval)) = pred {
                    out.push('[');
                    if pdeep {
                        out.push_str("//");
                    }
                    out.push_str(TAGS[ptag]);
                    if let Some(v) = pval {
                        out.push_str(&format!(" = '{v}'"));
                    }
                    out.push(']');
                }
                if i == last {
                    if let Some(v) = &trailing {
                        out.push_str(&format!("='{v}'"));
                    }
                }
            }
            out
        },
    )
}

fn assert_trees_equal(a: &QueryTree, b: &QueryTree) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.node_ids().zip(b.node_ids()) {
        assert_eq!(a.node(x).axis, b.node(y).axis);
        assert_eq!(a.node(x).test, b.node(y).test);
        assert_eq!(a.node(x).value_eq, b.node(y).value_eq);
        assert_eq!(a.node(x).children.len(), b.node(y).children.len());
    }
    assert_eq!(a.output().index(), b.output().index());
}

proptest! {
    /// parse ∘ display ∘ parse = parse.
    #[test]
    fn display_round_trips(src in query_text()) {
        let q = parse(&src).unwrap();
        let printed = q.to_string();
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_trees_equal(&q, &q2);
    }

    /// The spine runs root → output along parent links, and every
    /// non-spine node is reachable from a spine node.
    #[test]
    fn spine_invariants(src in query_text()) {
        let q = parse(&src).unwrap();
        let spine = q.spine();
        prop_assert_eq!(spine[0], q.root());
        prop_assert_eq!(*spine.last().unwrap(), q.output());
        for pair in spine.windows(2) {
            prop_assert_eq!(q.node(pair[1]).parent, Some(pair[0]));
        }
        // Parent links are acyclic and consistent with children lists.
        for id in q.node_ids() {
            for &c in &q.node(id).children {
                prop_assert_eq!(q.node(c).parent, Some(id));
            }
        }
    }

    /// Stripping value predicates preserves structure.
    #[test]
    fn value_stripping_preserves_shape(src in query_text()) {
        let q = parse(&src).unwrap();
        let stripped = q.without_value_predicates();
        prop_assert_eq!(q.len(), stripped.len());
        for id in stripped.node_ids() {
            prop_assert!(stripped.node(id).value_eq.is_none());
        }
        prop_assert_eq!(q.spine(), stripped.spine());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "[/a-z\\[\\]*='\" @]{0,48}") {
        let _ = parse(&input);
    }
}
