//! Property tests for the XPath parser: display round-trips, spine
//! invariants, and no-panic robustness.

use blas_xpath::{parse, QueryTree};
use proptest::prelude::*;

const TAGS: &[&str] = &["a", "b", "item", "name", "x1"];

/// Random well-formed query text.
fn query_text() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        0usize..TAGS.len(),
        prop::option::of((prop::bool::ANY, 0usize..TAGS.len(), prop::option::of("[a-z]{1,4}"))),
    );
    (prop::collection::vec(step, 1..5), prop::option::of("[a-z]{1,4}")).prop_map(
        |(steps, trailing)| {
            let mut out = String::new();
            let last = steps.len() - 1;
            for (i, (deep, tag, pred)) in steps.into_iter().enumerate() {
                out.push_str(if deep { "//" } else { "/" });
                out.push_str(TAGS[tag]);
                if let Some((pdeep, ptag, pval)) = pred {
                    out.push('[');
                    if pdeep {
                        out.push_str("//");
                    }
                    out.push_str(TAGS[ptag]);
                    if let Some(v) = pval {
                        out.push_str(&format!(" = '{v}'"));
                    }
                    out.push(']');
                }
                if i == last {
                    if let Some(v) = &trailing {
                        out.push_str(&format!("='{v}'"));
                    }
                }
            }
            out
        },
    )
}

fn assert_trees_equal(a: &QueryTree, b: &QueryTree) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.node_ids().zip(b.node_ids()) {
        assert_eq!(a.node(x).axis, b.node(y).axis);
        assert_eq!(a.node(x).test, b.node(y).test);
        assert_eq!(a.node(x).value_eq, b.node(y).value_eq);
        assert_eq!(a.node(x).children.len(), b.node(y).children.len());
    }
    assert_eq!(a.output().index(), b.output().index());
}

proptest! {
    /// parse ∘ display ∘ parse = parse.
    #[test]
    fn display_round_trips(src in query_text()) {
        let q = parse(&src).unwrap();
        let printed = q.to_string();
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_trees_equal(&q, &q2);
    }

    /// The spine runs root → output along parent links, and every
    /// non-spine node is reachable from a spine node.
    #[test]
    fn spine_invariants(src in query_text()) {
        let q = parse(&src).unwrap();
        let spine = q.spine();
        prop_assert_eq!(spine[0], q.root());
        prop_assert_eq!(*spine.last().unwrap(), q.output());
        for pair in spine.windows(2) {
            prop_assert_eq!(q.node(pair[1]).parent, Some(pair[0]));
        }
        // Parent links are acyclic and consistent with children lists.
        for id in q.node_ids() {
            for &c in &q.node(id).children {
                prop_assert_eq!(q.node(c).parent, Some(id));
            }
        }
    }

    /// Stripping value predicates preserves structure.
    #[test]
    fn value_stripping_preserves_shape(src in query_text()) {
        let q = parse(&src).unwrap();
        let stripped = q.without_value_predicates();
        prop_assert_eq!(q.len(), stripped.len());
        for id in stripped.node_ids() {
            prop_assert!(stripped.node(id).value_eq.is_none());
        }
        prop_assert_eq!(q.spine(), stripped.spine());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "[/a-z\\[\\]*='\" @]{0,48}") {
        let _ = parse(&input);
    }

    /// Totality over the full token alphabet, including multi-byte
    /// characters (probing slicing at char boundaries), digits and
    /// the `and` keyword letters. Every outcome is `Ok` or a typed
    /// `XPathError` — a panic here would kill a serving thread.
    #[test]
    fn parser_is_total_on_malformed_input(input in "[/a-zA-Z0-9\\[\\]*='\" @_:.\\-äβ☃和]{0,64}") {
        let _ = parse(&input);
    }

    /// Mutation fuzz: splice garbage into a *well-formed* query at a
    /// random char boundary. This reaches states pure noise rarely
    /// does (valid prefixes with a malformed continuation).
    #[test]
    fn parser_is_total_under_mutation(
        src in query_text(),
        junk in "[/\\[\\]*='\"a-z ]{0,8}",
        at in 0usize..4096,
    ) {
        let mut s = src;
        let boundaries: Vec<usize> =
            s.char_indices().map(|(i, _)| i).chain([s.len()]).collect();
        s.insert_str(boundaries[at % boundaries.len()], &junk);
        let _ = parse(&s);
    }

    /// Truncation fuzz: every prefix of a well-formed query parses to
    /// a value or a typed error (the `expect("at least one step")`
    /// regression class: dangling axes, unclosed predicates,
    /// half-written literals).
    #[test]
    fn parser_is_total_on_truncated_queries(src in query_text(), at in 0usize..4096) {
        let boundaries: Vec<usize> =
            src.char_indices().map(|(i, _)| i).chain([src.len()]).collect();
        let _ = parse(&src[..boundaries[at % boundaries.len()]]);
    }

    /// Predicate nesting is bounded: ≤ 64 levels parse, deeper is a
    /// typed error — never unbounded recursion.
    #[test]
    fn predicate_nesting_is_bounded(n in 0usize..200) {
        let mut s = String::from("/a");
        for _ in 0..n {
            s.push_str("[a");
        }
        s.extend(std::iter::repeat_n(']', n));
        let r = parse(&s);
        if n <= 64 {
            prop_assert!(r.is_ok(), "{n} levels must parse: {r:?}");
        } else {
            prop_assert!(r.is_err(), "{n} levels must be rejected");
        }
        // The unbalanced variant (no closing brackets) is an error at
        // any depth but must be *typed* too.
        let mut open = String::from("/a");
        for _ in 0..n {
            open.push_str("[a");
        }
        prop_assert!(parse(&open).is_err() || n == 0);
    }
}

/// A pathological 100k-deep nesting must come back as a typed error:
/// before the depth bound this was linear recursion — a stack overflow
/// aborts the whole process, which a server cannot catch.
#[test]
fn pathological_nesting_returns_typed_error_not_abort() {
    let mut s = String::from("/a");
    for _ in 0..100_000 {
        s.push_str("[a");
    }
    let err = parse(&s).unwrap_err();
    assert!(err.msg.contains("nesting"), "{err}");
}

/// The exact shapes that used to reach `expect("at least one step")`
/// or slice mid-token all yield typed errors today.
#[test]
fn malformed_corpus_yields_typed_errors() {
    for bad in [
        "", "/", "//", "/a/", "/a//", "/a[", "/a[]", "/a[b", "/a[b]]", "/a[b][",
        "/a='", "/a='x", "/a=\"x'", "/a[b='x]", "/a[b and", "/a[b and ]", "/a[and]",
        "=", "'", "\"", "[", "]", "*", "/*[*]=", "//=''", "/a[//]", "/a[b]='",
        "/ä☃", "/a[☃]", "/a b", "/@", "/a/=",
    ] {
        match parse(bad) {
            Ok(_) => {}
            Err(e) => {
                assert!(!e.msg.is_empty() && e.pos <= bad.len(), "{bad:?}: {e}");
            }
        }
    }
}
