//! Differential mutation suite for the delta store: random documents
//! take random mutation scripts through the public `BlasDb` API —
//! inserts on the rightmost spine, subtree deletes, retags — and the
//! delta-layered database must answer **byte-identically** to a store
//! rebuilt from scratch from its own folded snapshot, across every
//! engine, sequential and sharded execution, and both column sources
//! (owned base and a memory-mapped v3 snapshot with packed columns,
//! each carrying the same delta).
//!
//! The same script is applied to the owned and the mapped twin in
//! lockstep, so any divergence between the two delta layers — not just
//! against the rebuild — fails the test too.

use blas::{BlasDb, EngineChoice};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const TAGS: &[&str] = &["a", "b", "c", "d"];

/// Random document over a tiny tag alphabet, with occasional text.
fn xml_doc() -> impl Strategy<Value = String> {
    let leaf = (0usize..TAGS.len(), prop::option::of("[xyz]")).prop_map(|(t, txt)| match txt {
        Some(s) => format!("<{0}>{s}</{0}>", TAGS[t]),
        None => format!("<{}/>", TAGS[t]),
    });
    leaf.prop_recursive(4, 60, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 1..4))
            .prop_map(|(t, kids)| format!("<{0}>{1}</{0}>", TAGS[t], kids.concat()))
    })
}

/// Fragments the insert op appends (tags drawn from the same alphabet;
/// a fragment whose tag is absent from the document's tag table is
/// rejected by the API, which the test treats as a no-op on both
/// twins).
const FRAGMENTS: &[&str] = &[
    "<a/>",
    "<b>x</b>",
    "<c><d>y</d></c>",
    "<a><b/><c>z</c></a>",
];

/// An abstract mutation script: `(kind, pick, detail)` triples resolved
/// against whatever the database looks like when each op runs.
fn scripts() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec((0u8..3, 0usize..64, 0usize..8), 1..8)
}

/// Live `(start, end, level)` triples of the current generation, in
/// document order (row 0 is the root).
fn live(db: &BlasDb) -> Vec<(u32, u32, u16)> {
    let snap = db.snapshot();
    let rows: Vec<(u32, u32, u16)> =
        snap.store().scan_all().map(|(_, r)| (r.start, r.end, r.level)).collect();
    rows
}

/// Apply one abstract op through the public mutation API. Returns a
/// description of what happened (including rejections), so the caller
/// can assert the owned and mapped twins stayed in lockstep.
fn apply(db: &BlasDb, (kind, pick, detail): (u8, usize, usize)) -> String {
    let nodes = live(db);
    let watermark = nodes[0].1;
    match kind {
        0 => {
            // Insert a fragment under a node of the rightmost spine.
            let spine: Vec<u32> = nodes
                .iter()
                .filter(|&&(_, e, l)| watermark - e == u32::from(l - 1))
                .map(|&(s, _, _)| s)
                .collect();
            let target = spine[pick % spine.len()];
            let frag = FRAGMENTS[detail % FRAGMENTS.len()];
            match db.insert_subtree(target, frag) {
                Ok(g) => format!("insert {frag} under {target} -> gen {g}"),
                Err(e) => format!("insert {frag} under {target} rejected: {e}"),
            }
        }
        1 => {
            // Delete a non-root subtree (no-op once only the root is left).
            if nodes.len() == 1 {
                return "delete skipped: root only".to_string();
            }
            let target = nodes[1 + pick % (nodes.len() - 1)].0;
            match db.delete(target) {
                Ok(g) => format!("delete {target} -> gen {g}"),
                Err(e) => format!("delete {target} rejected: {e}"),
            }
        }
        _ => {
            // Retag any live node (rejected if the tag is not in the
            // document's table; a same-tag retag publishes nothing).
            let target = nodes[pick % nodes.len()].0;
            let tag = TAGS[detail % TAGS.len()];
            match db.retag(target, tag) {
                Ok(g) => format!("retag {target} -> {tag} -> gen {g}"),
                Err(e) => format!("retag {target} -> {tag} rejected: {e}"),
            }
        }
    }
}

/// Snapshot `db` to a unique temp file and reopen it mapped (v3 layout:
/// packed label/tag/value planes served straight from the mapping).
fn mapped_twin(db: &BlasDb) -> (BlasDb, std::path::PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "blas_delta_equivalence_{}_{}.snap",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, db.to_snapshot()).unwrap();
    let mapped = BlasDb::open_mapped(&path).unwrap();
    assert!(mapped.store().is_mapped());
    (mapped, path)
}

/// Unanchored queries every engine accepts, exercising tag scans,
/// child and descendant steps, predicates and value tests.
const QUERIES: &[&str] = &[
    "//a",
    "//b",
    "//c",
    "//d",
    "//a/b",
    "//b//c",
    "//a[b]",
    "//c[d]//a",
    "//b='x'",
];

/// Engine × sharding grid the mutated databases must agree on.
fn choices() -> [EngineChoice; 7] {
    [
        EngineChoice::auto(),
        EngineChoice::rdbms(),
        EngineChoice::rdbms().with_shards(4),
        EngineChoice::twig(),
        EngineChoice::twig().with_shards(4),
        EngineChoice::twigstack(),
        EngineChoice::twigstack().with_shards(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential property: after an arbitrary mutation script,
    /// base ⊎ delta ≡ a database rebuilt from scratch on the folded
    /// snapshot — for every engine × sharding × column source.
    #[test]
    fn mutated_databases_answer_like_their_folded_rebuild(
        src in xml_doc(),
        script in scripts(),
    ) {
        let owned = BlasDb::load(&src).unwrap();
        let (mapped, path) = mapped_twin(&owned);

        for op in script {
            let a = apply(&owned, op);
            let b = apply(&mapped, op);
            prop_assert_eq!(&a, &b, "owned and mapped twins diverged on {:?}", op);
        }
        prop_assert_eq!(owned.generation(), mapped.generation());

        // Folding the delta is source-independent…
        let folded = owned.to_snapshot();
        prop_assert_eq!(&folded, &mapped.to_snapshot(), "snapshots of the twins differ");
        // …and `from_snapshot`'s eager tree rebuild validates that the
        // mutated intervals still nest consistently.
        let rebuilt = BlasDb::from_snapshot(&folded).unwrap();

        for q in QUERIES {
            let expect = rebuilt.query(q, EngineChoice::rdbms()).unwrap();
            let expect_texts = rebuilt.texts(&expect);
            for choice in choices() {
                let a = owned.query(q, choice).unwrap();
                prop_assert_eq!(&a.nodes, &expect.nodes, "owned {} under {:?}", q, choice);
                let b = mapped.query(q, choice).unwrap();
                prop_assert_eq!(&b.nodes, &expect.nodes, "mapped {} under {:?}", q, choice);
            }
            prop_assert_eq!(owned.texts(&expect), expect_texts, "texts {}", q);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Compaction is invisible: fold the delta in place and every
    /// query answers exactly as before, on both column sources.
    #[test]
    fn compaction_preserves_every_answer(
        src in xml_doc(),
        script in scripts(),
    ) {
        let owned = BlasDb::load(&src).unwrap();
        let (mapped, path) = mapped_twin(&owned);
        for op in script {
            let a = apply(&owned, op);
            let b = apply(&mapped, op);
            prop_assert_eq!(&a, &b, "owned and mapped twins diverged on {:?}", op);
        }
        let before: Vec<_> = QUERIES
            .iter()
            .map(|q| owned.query(q, EngineChoice::auto()).unwrap().nodes)
            .collect();
        owned.compact();
        mapped.compact();
        prop_assert_eq!(
            owned.delta_stats().inserted + owned.delta_stats().deleted,
            0,
            "compaction empties the delta"
        );
        for (q, expect) in QUERIES.iter().zip(&before) {
            for db in [&owned, &mapped] {
                for choice in [EngineChoice::auto(), EngineChoice::rdbms().with_shards(4)] {
                    let got = db.query(q, choice).unwrap();
                    prop_assert_eq!(&got.nodes, expect, "{} under {:?}", q, choice);
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// A deterministic end-to-end script on a hand-checked document, so a
/// failure here localizes without shrinking: grow, prune, rename, then
/// verify against the folded rebuild.
#[test]
fn pinned_script_matches_rebuild_everywhere() {
    // D-label units (start tag, text datum and end tag are one unit
    // each): <a>=[0,12], <b>x</b>=[1,3], <c>=[4,11], <d>y</d>=[5,7],
    // <b>z</b>=[8,10].
    let db = BlasDb::load("<a><b>x</b><c><d>y</d><b>z</b></c></a>").unwrap();
    db.delete(5).unwrap(); // the <d>y</d> under <c>
    db.retag(8, "d").unwrap(); // the <b>z</b> under <c> becomes <d>z</d>
    // A 2-deep fragment under <c> (level 2, still on the spine here)
    // would put a node at level 4, past the domain's H − 1 = 3 levels —
    // rejected, not mislabeled.
    assert!(db.insert_subtree(4, "<b><a/></b>").is_err());
    db.insert_subtree(0, "<b><a>w</a></b>").unwrap(); // appended inside the root
    db.insert_subtree(0, "<c/>").unwrap(); // appended inside the root
    assert_eq!(db.generation(), 4);

    let rebuilt = BlasDb::from_snapshot(&db.to_snapshot()).unwrap();
    for q in QUERIES {
        let expect = rebuilt.query(q, EngineChoice::rdbms()).unwrap();
        for choice in choices() {
            let got = db.query(q, choice).unwrap();
            assert_eq!(got.nodes, expect.nodes, "{q} under {choice:?}");
        }
    }
    // Semantic spot checks of the final tree.
    let d = db.query("//d", EngineChoice::auto()).unwrap();
    assert_eq!(db.texts(&d), [Some("z".to_string())]);
    let w = db.query("//b/a", EngineChoice::auto()).unwrap();
    assert_eq!(db.texts(&w), [Some("w".to_string())]);
    assert_eq!(db.query("//c", EngineChoice::auto()).unwrap().nodes.len(), 2);
}
