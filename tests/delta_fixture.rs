//! Checked-in compaction fixtures: a tiny base snapshot, a delta
//! sidecar (the serialized mutation log of a pinned edit script), and
//! the golden v3 snapshot the pair compacts to. Guards three things at
//! byte granularity: the sidecar format itself, the replay path
//! (`NodeStore::apply_edits` over a decoded log), and the fold — the
//! mutated store must serialize to exactly the golden bytes whether
//! the edits arrived through the `BlasDb` mutation API or the sidecar.
//! Regenerate with `cargo test regenerate_delta_fixtures -- --ignored`
//! only after an intentional format change.

use blas::{BlasDb, DeltaEdits, EngineChoice, NodeRecord, NodeStore};
use blas_storage::{decode_edits, encode_edits, SnapshotError};

/// The document behind `tests/fixtures/tiny_base_v3.snap` (same tree
/// as the v2 compatibility fixture; D-label units in the comments of
/// `mutate`).
const FIXTURE_XML: &str = "<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>";
const BASE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_base_v3.snap");
const EDITS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_delta.edits");
const COMPACTED_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_compacted_v3.snap");

/// The pinned edit script the sidecar encodes: one delete, one retag,
/// one rightmost-spine insert.
fn mutate(db: &BlasDb) {
    db.delete(6).unwrap(); // the <x> subtree ([6, 12])
    db.retag(13, "e").unwrap(); // the trailing <n>c</n> becomes <e>c</e>
    db.insert_subtree(0, "<e><n>d</n></e>").unwrap(); // appended under the root
}

/// Owned tuples of a store in document order (delta merged in).
fn records_of(store: &NodeStore) -> Vec<NodeRecord> {
    store
        .scan_all()
        .map(|(_, r)| NodeRecord {
            plabel: r.plabel,
            start: r.start,
            end: r.end,
            level: r.level,
            tag: r.tag,
            data: r.data.map(str::to_string),
        })
        .collect()
}

/// Serialize `store` with `db`'s tag table and domain (the fixture
/// files are plain `encode_store` output, like `BlasDb::to_snapshot`).
fn encode_with(db: &BlasDb, store: &NodeStore) -> Vec<u8> {
    let tag_names: Vec<String> =
        db.document().tags().iter().map(|(_, n)| n.to_string()).collect();
    blas_storage::snapshot::encode_store(
        store,
        &tag_names,
        db.domain().num_tags() as u32,
        db.domain().digits(),
    )
}

#[test]
fn checked_in_delta_sidecar_replays_to_the_golden_compacted_snapshot() {
    let base_bytes = std::fs::read(BASE_PATH).expect("fixture checked in");
    let edits_bytes = std::fs::read(EDITS_PATH).expect("fixture checked in");
    let golden = std::fs::read(COMPACTED_PATH).expect("fixture checked in");

    // Replay path: decode the sidecar, layer it over the base columns,
    // fold, re-encode — byte-identical to the golden snapshot.
    let base = BlasDb::from_snapshot(&base_bytes).unwrap();
    let edits = decode_edits(&edits_bytes).unwrap();
    assert!(!edits.is_empty());
    let layered = base.store().apply_edits(&edits).unwrap();
    let folded = NodeStore::from_records(records_of(&layered));
    assert_eq!(encode_with(&base, &folded), golden, "replayed delta must fold to the golden bytes");

    // API path: the same script through the public mutation API folds
    // to the same bytes (`to_snapshot` compacts on the way out).
    let db = BlasDb::load(FIXTURE_XML).unwrap();
    mutate(&db);
    assert_eq!(db.to_snapshot(), golden, "API mutations must fold to the golden bytes");

    // And the golden snapshot answers like the mutated database.
    let restored = BlasDb::from_snapshot(&golden).unwrap();
    for q in ["//n", "//e", "/db/e/n", "//e='c'"] {
        let a = db.query(q, EngineChoice::auto()).unwrap();
        let b = restored.query(q, EngineChoice::auto()).unwrap();
        assert_eq!(a.nodes, b.nodes, "{q}");
        assert_eq!(db.texts(&a), restored.texts(&b), "{q} texts");
    }
    assert!(restored.query("//x", EngineChoice::auto()).unwrap().nodes.is_empty());
}

/// Corrupting any region of the sidecar — magic, body, checksum, or a
/// truncation — must surface as a **typed** decode error, never a
/// panic or a silently wrong log.
#[test]
fn corrupt_delta_sidecar_is_rejected_with_typed_errors() {
    let good = std::fs::read(EDITS_PATH).expect("fixture checked in");
    assert!(decode_edits(&good).is_ok());

    // Magic.
    let mut bad = good.clone();
    bad[0] ^= 0x40;
    assert_eq!(decode_edits(&bad).unwrap_err(), SnapshotError::BadMagic);

    // Every single-byte flip in the body or trailing checksum lands on
    // the fnv1a-64 (or, for count fields, a bounds check) — walk the
    // whole file to prove no offset decodes silently.
    for i in 8..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        assert!(decode_edits(&bad).is_err(), "flip at offset {i} must not decode");
    }

    // Truncations at every length.
    for len in 0..good.len() {
        assert!(decode_edits(&good[..len]).is_err(), "truncation to {len} must not decode");
    }
}

/// Writes the three fixture files. Ignored: they are supposed to stay
/// byte-stable in the repository; rerun explicitly only on an
/// intentional sidecar or snapshot format change.
#[test]
#[ignore = "regenerates the checked-in delta/compaction fixtures"]
fn regenerate_delta_fixtures() {
    let base = BlasDb::load(FIXTURE_XML).unwrap();
    let base_records = records_of(base.store());
    let base_bytes = base.to_snapshot();

    let db = BlasDb::load(FIXTURE_XML).unwrap();
    mutate(&db);

    // Reconstruct the cumulative edit log by diffing the mutated live
    // tuples against the base rows (starts are stable identities:
    // deletes never reclaim units and inserts never reuse them).
    let snap = db.snapshot();
    let mutated = records_of(snap.store());
    let mut edits = DeltaEdits::new();
    for (row, rec) in base_records.iter().enumerate() {
        if !mutated.iter().any(|m| m == rec) {
            edits.deleted_rows.push(row as u32);
        }
    }
    for rec in &mutated {
        if !base_records.iter().any(|b| b == rec) {
            edits.inserted.push(rec.clone());
        }
    }
    edits.retags = db.delta_stats().retags;
    // The reconstructed log must replay to the same live tuples.
    let replayed = base.store().apply_edits(&edits).unwrap();
    assert_eq!(records_of(&replayed), mutated);

    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
    std::fs::write(BASE_PATH, base_bytes).unwrap();
    std::fs::write(EDITS_PATH, encode_edits(&edits)).unwrap();
    std::fs::write(COMPACTED_PATH, db.to_snapshot()).unwrap();
}
