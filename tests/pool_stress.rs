//! Concurrency stress suite for the persistent worker pool: one
//! `BlasDb` — one pool — hammered by many OS threads at once, with
//! every answer checked against the single-threaded baseline, plus
//! panic-isolation: a panicking job must surface as an error and leave
//! the pool fully usable.
//!
//! The CI `concurrency` job runs this file with `RUST_TEST_THREADS=4`
//! on multi-core runners so the schedules here are genuinely
//! contended; on a single-core host the tests still validate
//! correctness (the pool's helping rule keeps every configuration
//! live at any core count).

use blas::{BlasDb, DLabel, EngineChoice};
use blas_datagen::{query_set, DatasetId};
use blas_engine::pool::{self, PoolHandle};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// OS threads firing queries at the shared database simultaneously.
const CLIENT_THREADS: usize = 8;
/// Query rounds per client thread.
const ROUNDS: usize = 4;

fn auction_db() -> BlasDb {
    BlasDb::load(&blas_datagen::auction(2, 42)).expect("generator output is well-formed")
}

/// The engine mix the clients rotate through: all three engines, all
/// parallel, plus one sequential configuration so pool and non-pool
/// executions interleave on the same store.
fn choices() -> [EngineChoice; 4] {
    [
        EngineChoice::rdbms().with_shards(4),
        EngineChoice::twig().with_shards(4),
        EngineChoice::twigstack().with_shards(3),
        EngineChoice::rdbms(),
    ]
}

#[test]
fn auction_queries_from_many_threads_share_one_pool() {
    let db = auction_db();
    let queries = query_set(DatasetId::Auction);

    // Single-threaded sequential baseline per query.
    let baselines: Vec<(&str, Vec<DLabel>)> = queries
        .iter()
        .map(|q| (q.xpath, db.query(q.xpath, EngineChoice::auto()).unwrap().nodes))
        .collect();

    // Force pool creation now so every client observes the same
    // instance, and remember it to prove nobody replaced it.
    let pool_before = db.pool().clone();
    let jobs_before = pool_before.jobs_submitted();
    let executed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for client in 0..CLIENT_THREADS {
            let db = &db;
            let baselines = &baselines;
            let executed = &executed;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let choice = choices()[(client + round) % choices().len()];
                    for (xpath, expected) in baselines {
                        let got = db
                            .query(xpath, choice)
                            .unwrap_or_else(|e| panic!("{xpath} under {choice:?}: {e}"));
                        assert_eq!(
                            &got.nodes, expected,
                            "client {client} round {round}: {xpath} under {choice:?} \
                             diverged from the sequential baseline"
                        );
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        executed.load(Ordering::Relaxed),
        CLIENT_THREADS * ROUNDS * baselines.len()
    );
    // Every parallel query ran as jobs on the one persistent pool: the
    // handle is the same instance and its monotone job counter moved
    // (no per-query or per-scan thread pools were created).
    assert!(
        db.pool().jobs_submitted() > jobs_before,
        "parallel queries must submit jobs to the shared pool"
    );
    assert_eq!(db.pool().threads(), pool_before.threads());
}

#[test]
fn panicking_job_surfaces_as_error_without_poisoning_the_pool() {
    let db = auction_db();
    let q = "/site/regions/asia/item/description";
    let expected = db.query(q, EngineChoice::auto()).unwrap().nodes;

    // Warm the pool with a real parallel query.
    let first = db.query(q, EngineChoice::parallel(4)).unwrap();
    assert_eq!(first.nodes, expected);
    let pool = db.pool().clone();

    // A handle-carried job that panics: the panic is *delivered* as an
    // Err, not re-raised, and the worker that ran it survives.
    let joined = pool::scope(&pool, |s| s.spawn_job(|| -> u32 { panic!("injected failure") }).join());
    let payload = joined.expect_err("a panicking job must surface as an error");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("injected failure")
    );

    // A fire-and-forget job that panics: scope re-raises it after its
    // barrier, which a caller observes as an unwind-shaped error.
    let raised = catch_unwind(AssertUnwindSafe(|| {
        pool::scope(&pool, |s| s.spawn(|| panic!("injected failure 2")))
    }));
    assert!(raised.is_err());

    // The pool is not poisoned: the same database keeps answering
    // parallel queries correctly on the same pool instance.
    for _ in 0..3 {
        let again = db.query(q, EngineChoice::parallel(4)).unwrap();
        assert_eq!(again.nodes, expected, "pool must survive a panicked job");
    }
    assert_eq!(db.pool().threads(), pool.threads());
}

#[test]
fn chain_heavy_pipelines_collapse_under_contention() {
    // Satellite of the chain-collapsing tentpole: long linear
    // pipelines (scan → pass-through filters → materialize) fired from
    // 8 OS threads at one shared pool. However contended the pool, a
    // pure chain must cost exactly one queue job — every non-root
    // operator rides inline — and one scratch checkout, while staying
    // byte-identical to sequential execution.
    use blas_engine::exec::{execute, ExecConfig, ExecProbe, ProbeEvent};
    use blas_engine::physical::{PhysOp, PhysPlan};
    use blas_engine::ExecStats;
    use blas_translate::BoundSource;

    let db = auction_db();
    let store = db.store();
    let item = db.tags().get("item").expect("auction has item");
    const FILTERS: usize = 8;
    let mut ops = vec![PhysOp::ClusteredScan {
        source: BoundSource::Tag(item),
        value_eq: None,
        level_eq: None,
    }];
    for i in 0..FILTERS {
        // A pass-through filter: a real operator hop that keeps the
        // stream intact, so the chain stays long and checkable.
        ops.push(PhysOp::ValueFilter { input: i, value_eq: None, level_eq: None });
    }
    ops.push(PhysOp::Materialize { input: FILTERS });
    let root = ops.len() - 1;
    let plan = PhysPlan::from_ops(ops, root);

    let mut seq_stats = ExecStats::default();
    let seq = execute(&plan, store, &ExecConfig::default(), &mut seq_stats);
    assert!(!seq.is_empty(), "the workload must move real tuples");

    let pool = PoolHandle::new(3);
    let jobs_before = pool.jobs_submitted();
    const ROUNDS_PER_CLIENT: usize = 6;
    std::thread::scope(|s| {
        for _ in 0..CLIENT_THREADS {
            let (plan, seq, seq_stats, pool) = (&plan, &seq, &seq_stats, &pool);
            s.spawn(move || {
                let probe = ExecProbe::new();
                for round in 0..ROUNDS_PER_CLIENT {
                    probe.clear();
                    // min_shard_elems = MAX: keep even the tag scan
                    // whole, so the chain is the entire execution.
                    let config = ExecConfig::on_pool(pool.clone(), 4)
                        .with_min_shard_elems(usize::MAX)
                        .with_probe(probe.clone());
                    let mut stats = ExecStats::default();
                    let out = execute(plan, store, &config, &mut stats);
                    assert_eq!(&out, seq, "round {round}");
                    assert_eq!(stats.elements_visited, seq_stats.elements_visited);
                    let events = probe.events();
                    assert_eq!(
                        events.iter().filter(|e| matches!(e, ProbeEvent::Submitted(_))).count(),
                        1,
                        "a pure chain pays exactly one queue job: {events:?}"
                    );
                    assert_eq!(
                        events.iter().filter(|e| matches!(e, ProbeEvent::Inlined(_))).count(),
                        plan.ops().len() - 1,
                        "every non-root operator runs inline: {events:?}"
                    );
                    assert_eq!(stats.scratch_checkouts, 1, "one checkout per queue job");
                }
            });
        }
    });
    assert_eq!(
        pool.jobs_submitted() - jobs_before,
        (CLIENT_THREADS * ROUNDS_PER_CLIENT) as u64,
        "one queue job per pipeline execution, even from 8 clients"
    );
}

#[test]
fn panic_inside_inlined_continuation_surfaces_and_pool_survives() {
    // A continuation that panics unwinds the producer's pool job; the
    // scope barrier must still re-raise it to the caller as an error,
    // and the worker that ran it must survive to serve more queries.
    use blas_engine::exec::{execute, ExecConfig, ExecProbe, ProbeEvent};
    use blas_engine::physical::{PhysOp, PhysPlan, TwigPattern};
    use blas_engine::ExecStats;
    use blas_translate::BoundSource;

    let db = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap();
    let store = db.store();
    // A deliberately inconsistent holistic pattern (root index out of
    // range): `PhysPlan::from_ops` only enforces the arena invariant,
    // so the plan builds — and the match operator panics the moment it
    // runs, which is *inline*, as the sole consumer of its stream.
    let pattern = TwigPattern {
        parent: vec![None],
        children: vec![vec![]],
        level_diff: vec![None],
        root: 7,
        output: 0,
    };
    let ops = vec![
        PhysOp::ClusteredScan { source: BoundSource::All, value_eq: None, level_eq: None },
        PhysOp::TwigStackMatch { streams: vec![0], pattern },
        PhysOp::Materialize { input: 1 },
    ];
    let plan = PhysPlan::from_ops(ops, 2);

    let pool = PoolHandle::new(2);
    let probe = ExecProbe::new();
    let config = ExecConfig::on_pool(pool.clone(), 2).with_probe(probe.clone());
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let mut stats = ExecStats::default();
        execute(&plan, store, &config, &mut stats)
    }));
    assert!(unwound.is_err(), "the inlined panic must surface as an error to the caller");
    let events = probe.events();
    assert!(
        events.contains(&ProbeEvent::Inlined(1)),
        "the failing op must have been a chain-collapsed continuation: {events:?}"
    );
    assert!(
        events.contains(&ProbeEvent::Started(1)) && !events.contains(&ProbeEvent::Finished(1)),
        "the failing op started but never finished: {events:?}"
    );

    // No worker died with the panic: the same pool instance keeps
    // executing healthy plans, byte-identical to sequential.
    let healthy = PhysPlan::from_ops(
        vec![
            PhysOp::ClusteredScan { source: BoundSource::All, value_eq: None, level_eq: None },
            PhysOp::ValueFilter { input: 0, value_eq: Some("y".into()), level_eq: None },
            PhysOp::Materialize { input: 1 },
        ],
        2,
    );
    let mut seq_stats = ExecStats::default();
    let seq = execute(&healthy, store, &ExecConfig::default(), &mut seq_stats);
    assert_eq!(seq.len(), 1);
    for _ in 0..3 {
        let mut stats = ExecStats::default();
        let again = execute(
            &healthy,
            store,
            &ExecConfig::on_pool(pool.clone(), 2),
            &mut stats,
        );
        assert_eq!(again, seq, "pool must survive a panicked continuation");
    }
}

/// Satellite of the delta-store tentpole: OS reader threads hammer
/// queries through pinned [`blas::DbSnapshot`]s while one writer
/// mutates the database and folds the delta — synchronously and on the
/// shared pool. Every answer must match the oracle for **exactly** the
/// generation the reader pinned, and a snapshot pinned at the start
/// must keep answering its own generation after a dozen publishes.
#[test]
fn readers_pin_generations_while_a_writer_mutates_and_compacts() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    const SRC: &str = concat!(
        "<db><e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
        "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e></db>"
    );
    const QUERIES: &[&str] = &["//n", "//y", "/db/e", "//e[p]"];
    /// Mutation steps: insert → compact → retag → delete, three times
    /// over. Each publishes exactly one generation.
    const STEPS: usize = 12;

    // One deterministic mutation step; targets are derived from the
    // current live tree, so the oracle and the contended database walk
    // the same generation sequence.
    fn mutate(db: &BlasDb, step: usize) -> u64 {
        let snap = db.snapshot();
        match step % 4 {
            // Append a fresh subtree under the root (always on the
            // rightmost spine).
            0 => db.insert_subtree(0, "<e><p><n>new</n></p></e>").unwrap(),
            // Fold the delta; the tree is unchanged.
            1 => db.compact(),
            // Toggle the tag of the newest level-4 node (n ↔ y).
            2 => {
                let rec = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 4)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r)
                    .unwrap();
                let to = if db.tags().name(rec.tag) == "n" { "y" } else { "n" };
                db.retag(rec.start, to).unwrap()
            }
            // Delete the newest <e> subtree (there is always one: the
            // source has two and each cycle nets +1 until its delete).
            _ => {
                let target = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 2)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r.start)
                    .unwrap();
                db.delete(target).unwrap()
            }
        }
    }

    // Oracle pass: replay the script sequentially and record every
    // query's answer per generation. The trailing entry is the
    // background compaction's generation (same answers: the last step
    // is a delete, so the delta is non-empty and the fold publishes).
    let oracle = BlasDb::load(SRC).unwrap();
    let answers_for = |db: &BlasDb| -> Vec<Vec<DLabel>> {
        QUERIES
            .iter()
            .map(|q| db.query(q, EngineChoice::auto()).unwrap().nodes)
            .collect()
    };
    let mut expected: Vec<Vec<Vec<DLabel>>> = vec![answers_for(&oracle)];
    for step in 0..STEPS {
        assert_eq!(mutate(&oracle, step), (step + 1) as u64);
        expected.push(answers_for(&oracle));
    }
    assert_eq!(oracle.compact(), (STEPS + 1) as u64);
    expected.push(answers_for(&oracle));
    let final_gen = (STEPS + 1) as u64;

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let done = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for client in 0..CLIENT_THREADS {
            let (db, done, checked, expected) = (&db, &done, &checked, &expected);
            s.spawn(move || {
                let engines =
                    [EngineChoice::auto(), EngineChoice::rdbms().with_shards(4), EngineChoice::twig()];
                // Pin one snapshot up front; it must stay valid and
                // generation-consistent through every publish below.
                let early = db.snapshot();
                let early_gen = early.generation();
                let mut rounds = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = db.snapshot();
                    let gen = snap.generation() as usize;
                    let choice = engines[(client + rounds) % engines.len()];
                    for (qi, q) in QUERIES.iter().enumerate() {
                        let got = snap
                            .query(q, choice)
                            .unwrap_or_else(|e| panic!("{q} at gen {gen}: {e}"));
                        // The generation pinned *before* the first
                        // query answers *all* of them: one consistent
                        // tree per round, never a torn read across a
                        // concurrent publish.
                        assert_eq!(
                            got.nodes, expected[gen][qi],
                            "client {client}: {q} diverged from the oracle at generation {gen}"
                        );
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                    rounds += 1;
                    if finished {
                        break;
                    }
                }
                // After the writer retired (and compaction folded the
                // delta), the snapshot loop must have reached the
                // final generation…
                assert_eq!(db.snapshot().generation(), final_gen);
                // …while the generation pinned at the start still
                // answers exactly as it did then.
                for (qi, q) in QUERIES.iter().enumerate() {
                    let got = early.query(q, EngineChoice::auto()).unwrap();
                    assert_eq!(
                        got.nodes, expected[early_gen as usize][qi],
                        "client {client}: pinned generation {early_gen} drifted"
                    );
                }
            });
        }

        // The writer: paced mutations, then a pool-side compaction.
        let (db, done) = (&db, &done);
        s.spawn(move || {
            for step in 0..STEPS {
                assert_eq!(mutate(db, step), (step + 1) as u64);
                std::thread::sleep(Duration::from_millis(1));
            }
            db.compact_in_background();
            while db.generation() < final_gen {
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        });
    });

    assert!(checked.load(Ordering::Relaxed) >= CLIENT_THREADS * QUERIES.len());
    let stats = db.delta_stats();
    assert_eq!((stats.inserted, stats.deleted), (0, 0), "the background fold emptied the delta");
    assert_eq!(stats.compactions, 4, "three synchronous folds plus the background one");
}

#[test]
fn external_pool_can_be_shared_across_databases() {
    // Two stores, one externally owned pool, driven through the
    // engine-level API: the pool outlives both databases' executions
    // and serves them interleaved from multiple threads.
    use blas::ExecConfig;
    use blas_engine::{exec, lower_plan, ExecStats};
    use blas_translate::{bind, translate_pushup};

    let xml_a = blas_datagen::auction(1, 7);
    let xml_b = blas_datagen::auction(1, 8);
    let db_a = BlasDb::load(&xml_a).unwrap();
    let db_b = BlasDb::load(&xml_b).unwrap();
    let pool = PoolHandle::new(3);

    let run = |db: &BlasDb, shards: usize| -> Vec<DLabel> {
        let q = blas_xpath::parse("/site/regions/asia/item[shipping]/description").unwrap();
        let bound = bind(&translate_pushup(&q).unwrap(), db.tags(), db.domain());
        let plan = lower_plan(&bound);
        let mut stats = ExecStats::default();
        let config = if shards > 1 {
            ExecConfig::on_pool(pool.clone(), shards).with_min_shard_elems(1)
        } else {
            ExecConfig::sequential()
        };
        exec::execute(&plan, db.store(), &config, &mut stats)
    };

    let seq_a = run(&db_a, 1);
    let seq_b = run(&db_b, 1);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..3 {
                    assert_eq!(run(&db_a, 4), seq_a);
                    assert_eq!(run(&db_b, 3), seq_b);
                }
            });
        }
    });
    assert!(pool.jobs_submitted() > 0);
}
