//! The mapped open path is indistinguishable from the decoding one —
//! and malformed snapshot files fail with typed errors, never panics.
//!
//! Acceptance for the mmap snapshot work: `BlasDb::open_mapped` must
//! answer the Auction Fig. 10 queries **byte-identically** to the
//! owned `BlasDb::from_snapshot` path, across every engine and under
//! sharded parallel scans.

use blas::{BlasDb, EngineChoice, Translator};
use blas_datagen::{query_set, DatasetId};
use blas_storage::snapshot::{self, SnapshotError};
use std::path::PathBuf;

fn snapshot_file(tag: &str, bytes: &[u8]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("blas_equiv_{tag}_{}.snap", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// The acceptance check: mapped answers ≡ owned answers on the Auction
/// Fig. 10 queries, for all three engines and for 4-way sharded scans.
#[test]
fn mapped_answers_fig10_queries_byte_identically_to_owned() {
    let xml = DatasetId::Auction.generate(1);
    let bytes = BlasDb::load(&xml).unwrap().to_snapshot();

    let owned = BlasDb::from_snapshot(&bytes).unwrap();
    let path = snapshot_file("fig10", &bytes);
    let mapped = BlasDb::open_mapped(&path).unwrap();
    assert!(mapped.store().is_mapped());
    assert!(!owned.store().is_mapped());

    let choices = [
        EngineChoice::auto(),
        EngineChoice::rdbms().with_translator(Translator::PushUp),
        EngineChoice::twig(),
        EngineChoice::twigstack(),
        EngineChoice::parallel(4),
        EngineChoice::rdbms().with_translator(Translator::DLabeling),
    ];
    for q in query_set(DatasetId::Auction) {
        for choice in choices {
            let a = owned.query(q.xpath, choice).unwrap();
            let b = mapped.query(q.xpath, choice).unwrap();
            assert_eq!(a.nodes, b.nodes, "{} {choice:?}", q.id);
            assert_eq!(
                a.stats.elements_visited, b.stats.elements_visited,
                "{} {choice:?} visits",
                q.id
            );
            assert_eq!(owned.texts(&a), mapped.texts(&b), "{} {choice:?} texts", q.id);
            assert_eq!(
                owned.tag_names(&a),
                mapped.tag_names(&b),
                "{} {choice:?} tags",
                q.id
            );
        }
        // Plans bind identically (same domain, same tag ids).
        assert_eq!(
            owned.explain_sql(q.xpath, Translator::PushUp).unwrap(),
            mapped.explain_sql(q.xpath, Translator::PushUp).unwrap(),
            "{}",
            q.id
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_header_is_a_typed_error() {
    let bytes = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap().to_snapshot();
    // Flip a byte inside the header's count fields: the O(1) header
    // checksum must catch it on both paths.
    let mut corrupt = bytes.clone();
    corrupt[25] ^= 0xff;
    assert_eq!(snapshot::decode(&corrupt), Err(SnapshotError::ChecksumMismatch));
    let path = snapshot_file("hdr", &corrupt);
    assert!(matches!(
        BlasDb::open_mapped(&path),
        Err(blas::BlasError::Snapshot(_))
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_file_is_a_typed_error() {
    let bytes = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap().to_snapshot();
    for cut in [0, 7, 600, 4096, bytes.len() / 2, bytes.len() - 3] {
        let err = snapshot::decode(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
            "cut {cut}: {err:?}"
        );
        let path = snapshot_file(&format!("cut{cut}"), &bytes[..cut]);
        assert!(
            matches!(BlasDb::open_mapped(&path), Err(blas::BlasError::Snapshot(_))),
            "cut {cut}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn wrong_version_is_a_typed_error() {
    let bytes = BlasDb::load("<a><b>x</b></a>").unwrap().to_snapshot();
    let mut wrong = bytes.clone();
    wrong[8] = 77; // version low byte — checked before any checksum
    assert_eq!(snapshot::decode(&wrong), Err(SnapshotError::BadVersion(77)));
    let path = snapshot_file("ver", &wrong);
    let err = BlasDb::open_mapped(&path);
    match err {
        Err(blas::BlasError::Snapshot(msg)) => {
            assert!(msg.contains("version 77"), "{msg}");
        }
        other => panic!("expected snapshot error, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_body_checksum_is_a_typed_error_on_the_verifying_paths() {
    let bytes = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap().to_snapshot();
    let mut corrupt = bytes.clone();
    let body_at = 4096 + (corrupt.len() - 4096) / 2;
    corrupt[body_at] ^= 0x01;
    // The verifying paths reject it…
    assert_eq!(snapshot::verify_checksum(&corrupt), Err(SnapshotError::ChecksumMismatch));
    assert_eq!(snapshot::decode(&corrupt), Err(SnapshotError::ChecksumMismatch));
    assert!(BlasDb::from_snapshot(&corrupt).is_err());
    // …and the intact original passes end-to-end verification.
    assert!(snapshot::verify_checksum(&bytes).is_ok());
}

#[test]
fn duplicate_tag_table_is_a_typed_error() {
    // A checksum-valid snapshot whose tag table repeats a name: the
    // interner would collapse the duplicates, leaving records pointing
    // at a dangling id — both open paths must refuse, not panic.
    use blas_storage::NodeRecord;
    use blas_xml::TagId;
    let snap = snapshot::Snapshot {
        records: vec![
            NodeRecord { plabel: 1, start: 0, end: 3, level: 1, tag: TagId(0), data: None },
            NodeRecord { plabel: 2, start: 1, end: 2, level: 2, tag: TagId(1), data: None },
        ],
        tag_names: vec!["a".into(), "a".into()],
        num_tags: 2,
        digits: 3,
    };
    let bytes = snapshot::encode(&snap);
    assert!(matches!(
        BlasDb::from_snapshot(&bytes),
        Err(blas::BlasError::Snapshot(_))
    ));
    let path = snapshot_file("duptags", &bytes);
    assert!(matches!(
        BlasDb::open_mapped(&path),
        Err(blas::BlasError::Snapshot(_))
    ));
    std::fs::remove_file(&path).unwrap();
}

/// Parse the v3 section table (19 entries of 24 bytes at offset 64:
/// id u32, encoding u32, offset u64, length u64) and return the
/// `(offset, len)` of the first section with a plane-led packed
/// encoding (FOR = 1, label planes = 2, dictionary = 3 — all of which
/// start with a FOR plane header, which the corruption test targets).
fn first_packed_section(bytes: &[u8]) -> (usize, usize) {
    for i in 0..19 {
        let at = 64 + i * 24;
        let enc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if (1..=3).contains(&enc) {
            let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
            return (off, len);
        }
    }
    panic!("a v3 snapshot of a non-empty document has packed sections");
}

#[test]
fn corrupt_packed_v3_section_is_a_typed_error() {
    let bytes = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap().to_snapshot();
    assert_eq!(bytes[8], 3, "current snapshots are version 3");
    let (off, _) = first_packed_section(&bytes);
    // Clobber the first block's width descriptor (plane layout: n,
    // payload_len, mins, offs, then widths — +16 for a one-block
    // plane) with an impossible value. The mapped open validates the
    // packed structure in its O(header) parse and must fail typed; the
    // decoding path catches the same byte via the body checksum.
    let mut evil = bytes.clone();
    evil[off + 16] = 9;
    assert_eq!(snapshot::decode(&evil), Err(SnapshotError::ChecksumMismatch));
    let path = snapshot_file("packedcorrupt", &evil);
    assert!(matches!(
        BlasDb::open_mapped(&path),
        Err(blas::BlasError::Snapshot(_))
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_inside_a_packed_v3_section_is_a_typed_error() {
    let bytes = BlasDb::load("<a><b>x</b><b>y</b></a>").unwrap().to_snapshot();
    let (off, len) = first_packed_section(&bytes);
    for cut in [off + 2, off + len / 2, off + len - 1] {
        let err = snapshot::decode(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
            "cut {cut}: {err:?}"
        );
        let path = snapshot_file(&format!("packedcut{cut}"), &bytes[..cut]);
        assert!(
            matches!(BlasDb::open_mapped(&path), Err(blas::BlasError::Snapshot(_))),
            "cut {cut}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn not_a_snapshot_is_a_typed_error() {
    assert_eq!(snapshot::decode(b"hello"), Err(SnapshotError::Truncated));
    assert_eq!(
        snapshot::decode(&[0x55u8; 8192]),
        Err(SnapshotError::BadMagic)
    );
    let path = snapshot_file("noise", &[0x55u8; 8192]);
    assert!(matches!(
        BlasDb::open_mapped(&path),
        Err(blas::BlasError::Snapshot(_))
    ));
    std::fs::remove_file(&path).unwrap();
}
