//! Golden plan-shape tests: for every Fig. 10 query, pin the exact
//! join/selection mix each translator produces. These are the §4.2 and
//! §5.2.2 accounting claims, frozen so a translator regression is
//! caught immediately.

use blas::{BlasDb, PlanSummary, Translator};
use blas_datagen::DatasetId;

/// (query id, xpath, per-translator (d_joins, eq_sel, range_sel, tag_scans)).
struct Golden {
    id: &'static str,
    xpath: &'static str,
    dlabel: (u32, u32, u32, u32),
    split: (u32, u32, u32, u32),
    pushup: (u32, u32, u32, u32),
}

fn shape(s: PlanSummary) -> (u32, u32, u32, u32) {
    (s.d_joins, s.eq_selections, s.range_selections, s.tag_scans)
}

#[test]
fn fig10_plan_shapes_are_pinned() {
    let goldens = [
        Golden {
            id: "QS1",
            xpath: "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
            dlabel: (5, 0, 0, 6),
            split: (0, 1, 0, 0),
            pushup: (0, 1, 0, 0),
        },
        Golden {
            id: "QS2",
            xpath: "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",
            dlabel: (4, 0, 0, 5),
            split: (1, 1, 1, 0),
            pushup: (1, 1, 1, 0),
        },
        Golden {
            id: "QS3",
            xpath: "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE",
            dlabel: (5, 0, 0, 6),
            split: (2, 1, 2, 0),
            pushup: (2, 2, 1, 0),
        },
        Golden {
            id: "QP1",
            xpath: "/ProteinDatabase/ProteinEntry/protein/name",
            dlabel: (3, 0, 0, 4),
            split: (0, 1, 0, 0),
            pushup: (0, 1, 0, 0),
        },
        Golden {
            id: "QP2",
            xpath: "/ProteinDatabase/ProteinEntry//authors/author='Daniel, M.'",
            dlabel: (3, 0, 0, 4),
            split: (1, 1, 1, 0),
            pushup: (1, 1, 1, 0),
        },
        Golden {
            id: "QP3",
            xpath: "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
            dlabel: (7, 0, 0, 8),
            // Branch joins: refinfo-chain, citation, year, protein/name.
            split: (4, 1, 4, 0),
            pushup: (4, 5, 0, 0),
        },
        Golden {
            id: "QA1",
            xpath: "//category/description/parlist/listitem",
            dlabel: (3, 0, 0, 4),
            split: (0, 0, 1, 0),
            pushup: (0, 0, 1, 0),
        },
        Golden {
            id: "QA2",
            xpath: "/site/regions//item/description",
            dlabel: (3, 0, 0, 4),
            split: (1, 1, 1, 0),
            pushup: (1, 1, 1, 0),
        },
        Golden {
            id: "QA3",
            xpath: "/site/regions/asia/item[shipping]/description",
            dlabel: (5, 0, 0, 6),
            split: (2, 1, 2, 0),
            pushup: (2, 3, 0, 0),
        },
    ];

    // Any document suffices — plans are symbolic before binding.
    let db = BlasDb::load("<x/>").unwrap();
    for g in goldens {
        let d = shape(db.plan(g.xpath, Translator::DLabeling).unwrap().summary());
        assert_eq!(d, g.dlabel, "{} dlabel", g.id);
        let s = shape(db.plan(g.xpath, Translator::Split).unwrap().summary());
        assert_eq!(s, g.split, "{} split", g.id);
        let p = shape(db.plan(g.xpath, Translator::PushUp).unwrap().summary());
        assert_eq!(p, g.pushup, "{} pushup", g.id);
        // Cross-checks from §4.2: baseline = l−1 joins; BLAS ≤ baseline.
        assert!(s.0 <= d.0 && p.0 <= d.0, "{}", g.id);
        // Push-up is at least as anchored as Split.
        assert!(p.1 >= s.1, "{} eq-selections", g.id);
    }
}

#[test]
fn unfold_has_no_range_selections_on_fig10() {
    for ds in DatasetId::ALL {
        let db = BlasDb::load(&ds.generate(1)).unwrap();
        for q in blas_datagen::query_set(ds) {
            let s = db.plan(q.xpath, Translator::Unfold).unwrap().summary();
            assert_eq!(s.range_selections, 0, "{}", q.id);
            assert_eq!(s.tag_scans, 0, "{}", q.id);
        }
    }
}
