//! End-to-end suite for the TCP front door: eight concurrent wire
//! clients racing queries against a single mutating server, every
//! answer checked against a sequential oracle for **exactly** the
//! generation the server reported; plus the typed failure paths —
//! admission rejection (`overloaded`), idle timeout, connection-limit
//! rejection, oversized frames — and graceful drain on shutdown.
//!
//! The CI `server` job runs this file with `RUST_TEST_THREADS=4` on
//! multi-core runners; on a single-core host the tests still validate
//! correctness (admission and drain are deterministic, not timed).

use blas::{BlasDb, DLabel, EngineChoice};
use blas_server::{Client, ClientError, Json, Server, ServerConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// Wire clients racing the server simultaneously (one writer + readers).
const CLIENTS: usize = 8;
/// Mutation steps; each publishes exactly one generation, so the suite
/// spans generations `0..=STEPS` — well past the required three.
const STEPS: usize = 9;

const SRC: &str = concat!(
    "<db><e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
    "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e></db>"
);
const QUERIES: &[&str] = &["//n", "//y", "/db/e", "//e[p]"];
const ENGINES: &[&str] = &["auto", "rdbms", "twig", "twigstack"];

/// A recorded mutation, replayable over the wire.
#[derive(Debug, Clone)]
enum Op {
    Insert { parent: u32, xml: String },
    Retag { start: u32, tag: String },
    Delete { start: u32 },
}

/// Replay the deterministic mutation script on the oracle, recording
/// (a) the wire-replayable ops and (b) every query's answer per
/// generation. Targets are derived from the live tree, so the wire
/// replay walks the identical generation sequence.
fn build_script(oracle: &BlasDb) -> (Vec<Op>, Vec<Vec<Vec<DLabel>>>) {
    let answers = |db: &BlasDb| -> Vec<Vec<DLabel>> {
        QUERIES
            .iter()
            .map(|q| db.query(q, EngineChoice::auto()).unwrap().nodes)
            .collect()
    };
    let mut ops = Vec::with_capacity(STEPS);
    let mut expected = vec![answers(oracle)];
    for step in 0..STEPS {
        let snap = oracle.snapshot();
        let op = match step % 3 {
            // Append a fresh subtree under the root (rightmost spine).
            0 => Op::Insert { parent: 0, xml: "<e><p><n>new</n></p></e>".into() },
            // Toggle the tag of the newest level-4 node (n ↔ y).
            1 => {
                let rec = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 4)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r)
                    .unwrap();
                let to = if oracle.tags().name(rec.tag) == "n" { "y" } else { "n" };
                Op::Retag { start: rec.start, tag: to.into() }
            }
            // Delete the newest <e> subtree.
            _ => {
                let start = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 2)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r.start)
                    .unwrap();
                Op::Delete { start }
            }
        };
        let generation = match &op {
            Op::Insert { parent, xml } => oracle.insert_subtree(*parent, xml).unwrap(),
            Op::Retag { start, tag } => oracle.retag(*start, tag).unwrap(),
            Op::Delete { start } => oracle.delete(*start).unwrap(),
        };
        assert_eq!(generation, (step + 1) as u64, "oracle script must be deterministic");
        ops.push(op);
        expected.push(answers(oracle));
    }
    (ops, expected)
}

fn as_triples(labels: &[DLabel]) -> Vec<(u32, u32, u16)> {
    labels.iter().map(|d| (d.start, d.end, d.level)).collect()
}

/// Tentpole acceptance: 8 concurrent TCP clients — one replaying the
/// mutation script, the rest firing queries across all four engine
/// tokens — and every reply must match the oracle for the generation
/// the server stamped on it.
#[test]
fn eight_wire_clients_race_mutations_across_generations() {
    let oracle = BlasDb::load(SRC).unwrap();
    let (script, expected) = build_script(&oracle);

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { read_timeout: Some(Duration::from_secs(30)), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let done = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    let observed: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    // Everyone connects and completes a generation-0 round before the
    // writer starts, so generation 0 is deterministically covered.
    let start = Barrier::new(CLIENTS);

    std::thread::scope(|s| {
        for client_no in 0..CLIENTS - 1 {
            let (expected, done, checked, observed, start) =
                (&expected, &done, &checked, &observed, &start);
            s.spawn(move || {
                let mut client = Client::connect(addr, Some(Duration::from_secs(30)))
                    .expect("reader connects");
                let mut round = 0usize;
                let check_round = |client: &mut Client, round: usize| {
                    for (qi, q) in QUERIES.iter().enumerate() {
                        let engine = ENGINES[(client_no + round + qi) % ENGINES.len()];
                        let reply = client
                            .query(q, engine)
                            .unwrap_or_else(|e| panic!("{q} on {engine}: {e}"));
                        let generation = reply.generation as usize;
                        assert_eq!(
                            reply.nodes,
                            as_triples(&expected[generation][qi]),
                            "client {client_no}: {q} on {engine} diverged from the \
                             oracle at generation {generation}"
                        );
                        assert_eq!(reply.count, expected[generation][qi].len());
                        observed.lock().unwrap().insert(reply.generation);
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                };
                check_round(&mut client, round);
                start.wait();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    round += 1;
                    check_round(&mut client, round);
                    if finished {
                        break;
                    }
                }
            });
        }

        // The writer client: replays the script over the wire, and
        // after each publish verifies the new generation's answers
        // itself — deterministic coverage of every generation 1..=STEPS
        // no matter how the readers are scheduled.
        let (script, expected, done, observed, start) =
            (&script, &expected, &done, &observed, &start);
        s.spawn(move || {
            let mut client =
                Client::connect(addr, Some(Duration::from_secs(30))).expect("writer connects");
            start.wait();
            for (step, op) in script.iter().enumerate() {
                let generation = match op {
                    Op::Insert { parent, xml } => client.insert_subtree(*parent, xml),
                    Op::Retag { start, tag } => client.retag(*start, tag),
                    Op::Delete { start } => client.delete(*start),
                }
                .unwrap_or_else(|e| panic!("step {step} ({op:?}): {e}"));
                assert_eq!(generation, (step + 1) as u64, "wire replay must track the oracle");
                for (qi, q) in QUERIES.iter().enumerate() {
                    let reply = client.query(q, "auto").unwrap();
                    assert_eq!(
                        reply.generation, generation,
                        "single writer: generation is stable between its steps"
                    );
                    assert_eq!(reply.nodes, as_triples(&expected[generation as usize][qi]));
                }
                observed.lock().unwrap().insert(generation);
            }
            // A structurally invalid mutation must come back as the
            // typed wire error, not a transport failure.
            let err = client.delete(9_999).expect_err("deleting a missing node");
            assert!(
                matches!(&err, ClientError::Rpc { code, .. } if code == "mutation"),
                "expected a typed mutation rejection, got {err}"
            );
            done.store(true, Ordering::Release);
        });
    });

    let observed = observed.into_inner().unwrap();
    assert!(
        (0..=STEPS as u64).all(|g| observed.contains(&g)),
        "every generation 0..={STEPS} must have answered queries, saw {observed:?}"
    );
    assert!(checked.load(Ordering::Relaxed) >= (CLIENTS - 1) * 2 * QUERIES.len());
    assert_eq!(db.generation(), STEPS as u64);

    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, CLIENTS as u64);
    assert_eq!(stats.overloaded, 0, "nothing should be rejected under the default bound");
    assert!(stats.served as usize >= checked.load(Ordering::Relaxed));
}

/// Admission control is typed and deterministic: with a zero in-flight
/// bound every query and mutation is answered `overloaded` — the
/// server never queues — while admission-exempt methods keep working.
#[test]
fn zero_inflight_bound_rejects_queries_with_typed_overloaded() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 0, ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), Some(Duration::from_secs(10))).unwrap();

    for _ in 0..3 {
        let err = client.query("//n", "auto").expect_err("admission bound is zero");
        assert!(err.is_overloaded(), "expected overloaded, got {err}");
    }
    let err = client.insert_subtree(0, "<e/>").expect_err("mutations are admitted too");
    assert!(err.is_overloaded(), "expected overloaded, got {err}");

    // Admission-exempt methods still answer: the server is overloaded,
    // not dead.
    let stats = client.stats().expect("stats bypasses admission");
    assert_eq!(stats.get("overloaded").and_then(Json::as_u64), Some(4));
    assert_eq!(db.generation(), 0, "rejected mutations must not publish");

    let final_stats = server.shutdown();
    assert_eq!(final_stats.overloaded, 4);
}

/// Admission under real concurrency: one slot, one client holding it —
/// a second concurrent query is rejected `overloaded`, and once the
/// slot frees the same connection is served again.
#[test]
fn saturated_inflight_slot_rejects_concurrent_queries() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 1, debug_hold: true, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr, Some(Duration::from_secs(30))).unwrap();
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str("//n")),
            ("hold_ms".into(), Json::num(1500.0)),
        ]);
        // The probing client below may transiently hold the one slot;
        // retry until this query is the one admitted.
        loop {
            match client.call("query", params.clone()) {
                Ok(r) => break r,
                Err(e) if e.is_overloaded() => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => panic!("holder: {e}"),
            }
        }
    });

    let mut client = Client::connect(addr, Some(Duration::from_secs(30))).unwrap();
    // Wait until the holder's query actually occupies the slot.
    let mut saw_overloaded = false;
    for _ in 0..100 {
        match client.query("//y", "auto") {
            Err(e) if e.is_overloaded() => {
                saw_overloaded = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(saw_overloaded, "a held slot must reject the concurrent query");

    holder.join().unwrap();
    let reply = client.query("//y", "auto").expect("slot freed after the hold");
    assert_eq!(reply.count, 2);
    assert!(server.shutdown().overloaded >= 1);
}

/// An idle connection is closed with a typed `timeout` frame once the
/// read budget is spent — not silently dropped.
#[test]
fn idle_connection_gets_a_typed_timeout_then_close() {
    use blas_server::{FrameReader, ReadEvent};

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { read_timeout: Some(Duration::from_millis(300)), ..Default::default() },
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = FrameReader::new();
    // Send nothing; the server must speak first.
    let frame = loop {
        match reader.poll(&mut stream).unwrap() {
            ReadEvent::Frame(f) => break f,
            ReadEvent::Idle => continue,
            other => panic!("expected a timeout frame, got {other:?}"),
        }
    };
    let resp = blas_server::json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("timeout")
    );
    // …and then the connection is closed.
    let closed = loop {
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Eof) | Err(_) => break true,
            Ok(ReadEvent::Idle) => continue,
            Ok(other) => panic!("expected EOF after the timeout frame, got {other:?}"),
        }
    };
    assert!(closed);
    assert_eq!(server.shutdown().timeouts, 1);
}

/// The connection bound rejects with one inline `overloaded` frame;
/// admitted connections are unaffected, and a freed slot is reusable.
#[test]
fn connection_limit_rejects_inline_and_slots_are_reusable() {
    use blas_server::{FrameReader, ReadEvent};

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr, Some(Duration::from_secs(10))).unwrap();
    // A served request proves the connection occupies the one slot.
    assert_eq!(first.query("//n", "auto").unwrap().count, 2);

    let mut second = std::net::TcpStream::connect(addr).unwrap();
    second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = FrameReader::new();
    let frame = loop {
        match reader.poll(&mut second).unwrap() {
            ReadEvent::Frame(f) => break f,
            ReadEvent::Idle => continue,
            other => panic!("expected a rejection frame, got {other:?}"),
        }
    };
    let resp = blas_server::json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("overloaded")
    );

    // The admitted connection was never disturbed…
    assert_eq!(first.query("//y", "auto").unwrap().count, 2);
    // …and dropping it frees the slot for a new client.
    drop(first);
    let mut third = loop {
        // The slot frees when the server notices the close (one poll
        // tick); retry until admission succeeds.
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).unwrap();
        match c.query("//n", "auto") {
            Ok(r) => {
                assert_eq!(r.count, 2);
                break c;
            }
            Err(e) if e.is_overloaded() => std::thread::sleep(Duration::from_millis(20)),
            // A rejection can also surface as a transport error: the
            // server writes the `overloaded` frame and closes, so a
            // racing request write sees EPIPE/ECONNRESET instead.
            Err(ClientError::Io(_)) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("unexpected failure: {e}"),
        }
    };
    assert_eq!(third.query("/db/e", "auto").unwrap().count, 2);

    let stats = server.shutdown();
    assert!(stats.connections_rejected >= 1);
}

/// The result cache: a repeat query is a hit with the identical
/// answer; a publish invalidates; `cache: false` bypasses.
#[test]
fn result_cache_hits_are_identical_and_publishes_invalidate() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server =
        Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), Some(Duration::from_secs(10))).unwrap();

    let miss = client.query("//n", "auto").unwrap();
    assert!(!miss.cached);
    let hit = client.query("//n", "auto").unwrap();
    assert!(hit.cached, "a repeat of the same (xpath, engine, generation) must hit");
    let fresh = client.query_count("//n", "auto", false).unwrap();
    assert!(!fresh.cached, "cache: false must bypass");
    assert_eq!((hit.generation, &hit.nodes, hit.count), (miss.generation, &miss.nodes, miss.count));
    assert_eq!(fresh.count, miss.count);

    // Different engine token → different cache key, even for the same
    // query string.
    assert!(!client.query("//n", "rdbms").unwrap().cached);

    // A publish moves the generation: the next query is a miss against
    // the new key, answers the new tree, and the superseded entries
    // are pruned by the publish hook.
    let generation = client.insert_subtree(0, "<e><p><n>new</n></p></e>").unwrap();
    let after = client.query("//n", "auto").unwrap();
    assert!(!after.cached, "a new generation must not hit stale entries");
    assert_eq!(after.generation, generation);
    assert_eq!(after.count, miss.count + 1);

    let stats = client.stats().unwrap();
    let cache = stats.get("result_cache").expect("stats exposes the result cache");
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap() >= 1);
    assert!(
        cache.get("invalidated").and_then(Json::as_u64).unwrap() >= 1,
        "the publish hook must prune superseded generations"
    );

    // clear_cache empties it: the same query misses again.
    assert!(client.query("//n", "auto").unwrap().cached);
    assert!(client.clear_cache().unwrap() >= 1);
    assert!(!client.query("//n", "auto").unwrap().cached);

    server.shutdown();
}

/// Malformed input is answered with typed errors — never a hang, never
/// a crash: bad JSON, an unknown method, a broken XPath, and a hostile
/// length prefix.
#[test]
fn malformed_requests_get_typed_errors() {
    use blas_server::{write_frame, FrameReader, ReadEvent, MAX_FRAME_BYTES};

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server =
        Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr, Some(Duration::from_secs(10))).unwrap();
    // A broken XPath comes back as the typed parser error.
    let err = client.query("/db[", "auto").expect_err("unterminated predicate");
    assert!(matches!(&err, ClientError::Rpc { code, .. } if code == "xpath"), "{err}");
    // An unknown engine token is a bad request, not a crash.
    let err = client.query("//n", "warp").expect_err("unknown engine");
    assert!(matches!(&err, ClientError::Rpc { code, .. } if code == "bad_request"), "{err}");
    // Unknown method, missing params: same story.
    let err = client.call("frobnicate", Json::Obj(vec![])).expect_err("unknown method");
    assert!(matches!(&err, ClientError::Rpc { code, .. } if code == "bad_request"), "{err}");
    let err = client.call("query", Json::Obj(vec![])).expect_err("missing xpath");
    assert!(matches!(&err, ClientError::Rpc { code, .. } if code == "bad_request"), "{err}");
    // The connection survived all of it.
    assert_eq!(client.query("//n", "auto").unwrap().count, 2);

    // Raw non-JSON bytes: typed bad_request.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut raw, b"this is not json").unwrap();
    let mut reader = FrameReader::new();
    let frame = loop {
        match reader.poll(&mut raw).unwrap() {
            ReadEvent::Frame(f) => break f,
            ReadEvent::Idle => continue,
            other => panic!("{other:?}"),
        }
    };
    let resp = blas_server::json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("bad_request")
    );

    // A hostile length prefix: typed frame_too_large, then close —
    // without the server allocating the announced size.
    let mut hostile = std::net::TcpStream::connect(addr).unwrap();
    hostile.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    use std::io::Write;
    hostile
        .write_all(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes())
        .unwrap();
    let mut reader = FrameReader::new();
    let frame = loop {
        match reader.poll(&mut hostile).unwrap() {
            ReadEvent::Frame(f) => break f,
            ReadEvent::Idle => continue,
            other => panic!("{other:?}"),
        }
    };
    let resp = blas_server::json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("frame_too_large")
    );

    server.shutdown();
}

/// Shutdown drains: a query already executing finishes and its client
/// gets the answer; afterwards the port stops accepting.
#[test]
fn shutdown_drains_inflight_queries_before_returning() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { debug_hold: true, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let started = Arc::new(Barrier::new(2));
    let started_in_thread = Arc::clone(&started);
    let held = std::thread::spawn(move || {
        let mut client = Client::connect(addr, Some(Duration::from_secs(30))).unwrap();
        started_in_thread.wait();
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str("//n")),
            ("hold_ms".into(), Json::num(600.0)),
        ]);
        client.call("query", params)
    });

    started.wait();
    // Give the held query time to be admitted, then shut down under it.
    std::thread::sleep(Duration::from_millis(150));
    let stats = server.shutdown();

    let reply = held.join().unwrap().expect("an in-flight query must be drained, not dropped");
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(2));
    assert!(stats.served >= 1);

    // The listener is gone: fresh connections are refused (or reset
    // before a response), never served.
    match Client::connect(addr, Some(Duration::from_secs(2))) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.query("//n", "auto").is_err(), "a drained server must not serve");
        }
    }
}
