//! `EngineChoice::Auto` end-to-end: the cost-based optimizer must be
//! a pure performance feature — byte-identical answers to every manual
//! engine on random documents and queries (owned *and* mapped stores),
//! sane pinned choices on the Fig. 10 suite (a suffix path must never
//! fall into the 180×-slower TwigStack lowering), and a plan cache
//! whose counters prove repeat queries skip preparation.

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_datagen::{query_set, DatasetId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const TAGS: &[&str] = &["a", "b", "c", "d"];

/// Random document over a tiny tag alphabet, with occasional text.
fn xml_doc() -> impl Strategy<Value = String> {
    let leaf = (0usize..TAGS.len(), prop::option::of("[xyz]")).prop_map(|(t, txt)| match txt {
        Some(s) => format!("<{0}>{s}</{0}>", TAGS[t]),
        None => format!("<{}/>", TAGS[t]),
    });
    leaf.prop_recursive(4, 60, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 1..4))
            .prop_map(|(t, kids)| format!("<{0}>{1}</{0}>", TAGS[t], kids.concat()))
    })
}

/// Random tree query: a spine of 1–4 steps with optional predicates
/// and value tests.
fn xpath_query() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        0usize..=TAGS.len(),
        prop::option::of((0usize..TAGS.len(), prop::bool::ANY)),
        prop::option::of("[xyz]"),
    );
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let mut out = String::new();
        let last = steps.len() - 1;
        for (i, (deep, tag, pred, value)) in steps.into_iter().enumerate() {
            out.push_str(if deep { "//" } else { "/" });
            out.push_str(TAGS.get(tag).copied().unwrap_or("*"));
            if let Some((ptag, pdeep)) = pred {
                out.push('[');
                if pdeep {
                    out.push_str("//");
                }
                out.push_str(TAGS[ptag]);
                out.push(']');
            }
            if i == last {
                if let Some(v) = value {
                    out.push_str(&format!("='{v}'"));
                }
            }
        }
        out
    })
}

/// Snapshot `db` to a unique temp file and reopen it mapped.
fn mapped_twin(db: &BlasDb) -> (BlasDb, std::path::PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "blas_optimizer_auto_{}_{}.snap",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, db.to_snapshot()).unwrap();
    let mapped = BlasDb::open_mapped(&path).unwrap();
    assert!(mapped.store().is_mapped());
    (mapped, path)
}

/// The manual engine choices Auto must agree with (the translator is
/// the recommended one per engine; D-labeling is the baseline oracle).
const MANUAL: [EngineChoice; 4] = [
    EngineChoice::rdbms(),
    EngineChoice::rdbms().with_translator(Translator::DLabeling),
    EngineChoice::twig(),
    EngineChoice::twigstack(),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Auto returns byte-identical nodes to every manual engine that
    /// accepts the query, on the owned store and on a mapped snapshot
    /// of the same document — and the two Auto runs agree with each
    /// other (the optimizer sees identical cardinalities either way).
    #[test]
    fn auto_matches_every_manual_engine_owned_and_mapped(
        src in xml_doc(),
        qsrc in xpath_query(),
    ) {
        let db = BlasDb::load(&src).unwrap();
        let (mapped, path) = mapped_twin(&db);

        let auto_owned = db.query(&qsrc, EngineChoice::auto()).unwrap();
        let auto_mapped = mapped.query(&qsrc, EngineChoice::auto()).unwrap();
        prop_assert_eq!(&auto_owned.nodes, &auto_mapped.nodes, "owned vs mapped on {}", qsrc);

        for choice in MANUAL {
            // Some manual configurations legitimately reject a query
            // (e.g. unions on a twig engine); Auto never does.
            let (Ok(owned), Ok(m)) = (db.query(&qsrc, choice), mapped.query(&qsrc, choice))
            else {
                continue;
            };
            prop_assert_eq!(&auto_owned.nodes, &owned.nodes, "{} owned {:?}", qsrc, choice);
            prop_assert_eq!(&auto_mapped.nodes, &m.nodes, "{} mapped {:?}", qsrc, choice);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// An explicit translator narrows the candidate race without
    /// changing answers.
    #[test]
    fn auto_with_explicit_translator_agrees(src in xml_doc(), qsrc in xpath_query()) {
        let db = BlasDb::load(&src).unwrap();
        let expected = db
            .query(&qsrc, EngineChoice::rdbms().with_translator(Translator::DLabeling))
            .unwrap();
        let auto = db
            .query(&qsrc, EngineChoice::auto().with_translator(Translator::DLabeling))
            .unwrap();
        prop_assert_eq!(&auto.nodes, &expected.nodes, "{}", qsrc);
    }
}

/// Pin the optimizer's choices on the nine Fig. 10 queries: the
/// literal TwigStack lowering (measured 25–180× slower) must never
/// win, every Auto decision must be fully resolved, and the answers
/// must match the manual engines.
#[test]
fn fig10_choices_are_pinned_and_correct() {
    for ds in DatasetId::ALL {
        let db = BlasDb::load(&ds.generate(1)).unwrap();
        for q in query_set(ds) {
            let info = db.plan_info(q.xpath, EngineChoice::auto()).unwrap();
            assert_ne!(
                info.engine,
                Engine::TwigStack,
                "{}: twigstack must never be picked (est {} ns)",
                q.id,
                info.est_cost_ns
            );
            assert_ne!(info.engine, Engine::Auto, "{}: engine must be resolved", q.id);
            assert_ne!(info.translator, Translator::Auto, "{}: translator must be resolved", q.id);
            assert!(info.shards >= 1, "{}: shards must be resolved", q.id);
            assert!(info.ops > 0 && info.est_cost_ns > 0.0, "{}", q.id);

            let auto = db.query(q.xpath, EngineChoice::auto()).unwrap();
            let rdbms = db.query(q.xpath, EngineChoice::rdbms()).unwrap();
            assert_eq!(auto.nodes, rdbms.nodes, "{}", q.id);
            if let Ok(twig) = db.query(q.xpath, EngineChoice::twig()) {
                assert_eq!(auto.nodes, twig.nodes, "{}", q.id);
            }
        }
    }
}

/// QA1 is the paper's flagship suffix path: one clustered P-label
/// range scan. The optimizer must keep it on the relational lowering
/// (twig ties at best, and twigstack prices ~3 orders worse).
#[test]
fn qa1_suffix_path_picks_the_relational_lowering() {
    let db = BlasDb::load(&DatasetId::Auction.generate(1)).unwrap();
    let qa1 = query_set(DatasetId::Auction)[0];
    assert_eq!(qa1.id, "QA1");
    let info = db.plan_info(qa1.xpath, EngineChoice::auto()).unwrap();
    assert_eq!(info.engine, Engine::Rdbms, "{info:?}");
}

/// Point queries must never be sharded onto the pool, whatever the
/// machine's core count; an explicit shard request is respected.
#[test]
fn shard_choice_respects_size_gate_and_overrides() {
    let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
    let info = db.plan_info("/db/e/n", EngineChoice::auto()).unwrap();
    assert_eq!(info.shards, 1, "point query stays sequential: {info:?}");
    let forced = db.plan_info("/db/e/n", EngineChoice::auto().with_shards(4)).unwrap();
    assert_eq!(forced.shards, 4);
    let r = db.query("/db/e/n", EngineChoice::auto().with_shards(4)).unwrap();
    assert_eq!(r.nodes.len(), 1);
}

/// The plan cache, counter-verified: the second identical query hits;
/// a different choice or a cleared cache misses.
#[test]
fn plan_cache_hits_are_counted() {
    let db = BlasDb::load("<db><e><n>x</n></e><e><n>y</n></e></db>").unwrap();
    let s0 = db.plan_cache_stats();
    assert_eq!((s0.hits, s0.misses, s0.entries), (0, 0, 0));

    let first = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    let s1 = db.plan_cache_stats();
    assert_eq!((s1.hits, s1.misses, s1.entries), (0, 1, 1));

    let second = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    assert_eq!(first.nodes, second.nodes);
    let s2 = db.plan_cache_stats();
    assert_eq!((s2.hits, s2.misses), (1, 1));

    // plan_info resolves through the same cache.
    let info = db.plan_info("/db/e/n", EngineChoice::auto()).unwrap();
    assert!(info.cached);
    assert_eq!(db.plan_cache_stats().hits, 2);

    // A different choice is a different plan.
    let _ = db.query("/db/e/n", EngineChoice::twig()).unwrap();
    let s3 = db.plan_cache_stats();
    assert_eq!((s3.hits, s3.misses, s3.entries), (2, 2, 2));

    // Clearing drops entries but keeps the counters accumulating.
    db.clear_plan_cache();
    assert_eq!(db.plan_cache_stats().entries, 0);
    let _ = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    let s4 = db.plan_cache_stats();
    assert_eq!((s4.hits, s4.misses, s4.entries), (2, 3, 1));
    assert!(s4.hit_rate() > 0.0 && s4.hit_rate() < 1.0);

    // An unparsable query errors without poisoning the cache.
    assert!(db.query("e/n", EngineChoice::auto()).is_err());
    assert_eq!(db.plan_cache_stats().entries, 1);
}

/// Satellite of the delta-store tentpole: the plan-cache key carries
/// the generation number, so a mutation is a cache **miss** that
/// re-costs the query against the delta-adjusted cardinalities, the
/// superseded entry is pruned, and `clear_plan_cache` keeps working
/// across generations.
#[test]
fn mutations_invalidate_the_plan_cache_by_generation() {
    let db = BlasDb::load("<db><e><n>x</n></e><e><n>y</n></e></db>").unwrap();
    let q = "/db/e/n";
    let before = db.query(q, EngineChoice::auto()).unwrap();
    assert_eq!(before.nodes.len(), 2);
    let _ = db.query(q, EngineChoice::auto()).unwrap();
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

    // A mutation publishes generation 1; the cached generation-0 plan
    // no longer applies.
    db.insert_subtree(0, "<e><n>z</n></e>").unwrap();
    assert_eq!(db.generation(), 1);
    let after = db.query(q, EngineChoice::auto()).unwrap();
    assert_eq!(after.nodes.len(), 3, "the re-prepared plan sees the insert");
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (1, 2), "a new generation is a miss, not a stale hit");
    assert_eq!(s.entries, 1, "the superseded generation's entry was pruned");

    // The re-costed plan is fully resolved, cached, and hit on repeat.
    let info = db.plan_info(q, EngineChoice::auto()).unwrap();
    assert!(info.cached);
    assert_ne!(info.engine, Engine::Auto);
    let _ = db.query(q, EngineChoice::auto()).unwrap();
    assert_eq!(db.plan_cache_stats().hits, 3);

    // Compaction folds the delta into fresh columns — also a new
    // generation, also a miss, same answer.
    db.compact();
    let folded = db.query(q, EngineChoice::auto()).unwrap();
    assert_eq!(folded.nodes, after.nodes);
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (3, 3, 1));

    // `clear_plan_cache` still empties the (generation-keyed) cache.
    db.clear_plan_cache();
    assert_eq!(db.plan_cache_stats().entries, 0);
    let _ = db.query(q, EngineChoice::auto()).unwrap();
    assert_eq!(db.plan_cache_stats().entries, 1);
}

/// `run` (pre-parsed trees) has no string key and must bypass the
/// cache entirely.
#[test]
fn run_bypasses_the_plan_cache() {
    let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
    let q = blas_xpath::parse("/db/e/n").unwrap();
    let r1 = db.run(&q, EngineChoice::auto()).unwrap();
    let r2 = db.run(&q, EngineChoice::auto()).unwrap();
    assert_eq!(r1.nodes, r2.nodes);
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
}

/// The engine-name round-trip the fig bins rely on.
#[test]
fn engine_choice_parses_and_displays() {
    for (token, choice) in [
        ("auto", EngineChoice::auto()),
        ("rdbms", EngineChoice::rdbms()),
        ("twig", EngineChoice::twig()),
        ("twigstack", EngineChoice::twigstack()),
    ] {
        let parsed: EngineChoice = token.parse().unwrap();
        assert_eq!(parsed, choice);
        assert_eq!(parsed.to_string(), token);
    }
    assert!("".parse::<EngineChoice>().is_err());
    assert!("Auto".parse::<EngineChoice>().is_err(), "tokens are lowercase");
    assert!("sql".parse::<EngineChoice>().is_err());
}
