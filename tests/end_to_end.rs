//! Cross-crate integration tests: the full pipeline (generate → parse →
//! label → store → translate → execute) on all three paper datasets,
//! with every translator × engine combination agreeing and the paper's
//! qualitative claims holding.

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_datagen::{query_set, xmark_benchmark, DatasetId};
use blas_xpath::parse;

/// Small scale keeps CI fast while exercising every code path.
fn load(ds: DatasetId) -> BlasDb {
    // Use a reduced instance: scale 1 is the paper's full base size,
    // fine for release benches but slow for debug tests. The generators
    // only accept integral scales, so generate scale 1 once per test
    // binary run (still < a few seconds in debug).
    BlasDb::load(&ds.generate(1)).expect("generator output is well-formed")
}

#[test]
fn fig10_queries_agree_across_strategies_and_engines() {
    for ds in DatasetId::ALL {
        let db = load(ds);
        for q in query_set(ds) {
            let reference = db
                .query_with(q.xpath, Translator::DLabeling, Engine::Rdbms)
                .unwrap();
            assert!(reference.stats.result_count > 0, "{} empty", q.id);
            for t in [Translator::Split, Translator::PushUp, Translator::Unfold] {
                let got = db.query_with(q.xpath, t, Engine::Rdbms).unwrap();
                assert_eq!(got.nodes, reference.nodes, "{} rdbms/{t:?}", q.id);
            }
            for t in [Translator::DLabeling, Translator::Split, Translator::PushUp] {
                // Twig engine runs the value-stripped form (§5.3.1), so
                // compare against the rdbms run of the same stripped
                // query.
                let stripped = parse(q.xpath).unwrap().without_value_predicates();
                let want = db
                    .run(&stripped, EngineChoice::rdbms().with_translator(Translator::DLabeling))
                    .unwrap();
                let got = db.run(&stripped, EngineChoice::twig().with_translator(t)).unwrap();
                assert_eq!(got.nodes, want.nodes, "{} twig/{t:?}", q.id);
            }
        }
    }
}

#[test]
fn xmark_benchmark_queries_agree() {
    let db = load(DatasetId::Auction);
    for q in xmark_benchmark() {
        let reference = db
            .query_with(q.xpath, Translator::DLabeling, Engine::Twig)
            .unwrap();
        assert!(reference.stats.result_count > 0, "{} empty", q.id);
        for t in [Translator::Split, Translator::PushUp] {
            let got = db.query_with(q.xpath, t, Engine::Twig).unwrap();
            assert_eq!(got.nodes, reference.nodes, "{} {t:?}", q.id);
        }
    }
}

#[test]
fn blas_translators_never_read_more_than_baseline() {
    for ds in DatasetId::ALL {
        let db = load(ds);
        for q in query_set(ds) {
            let base = db
                .query_with(q.xpath, Translator::DLabeling, Engine::Rdbms)
                .unwrap()
                .stats;
            for t in [Translator::Split, Translator::PushUp, Translator::Unfold] {
                let s = db.query_with(q.xpath, t, Engine::Rdbms).unwrap().stats;
                assert!(
                    s.elements_visited <= base.elements_visited,
                    "{} {t:?}: {} > baseline {}",
                    q.id,
                    s.elements_visited,
                    base.elements_visited
                );
                assert!(s.d_joins <= base.d_joins, "{} {t:?} joins", q.id);
            }
        }
    }
}

#[test]
fn suffix_path_queries_read_only_matching_tuples() {
    // §4.2 claim 2: for /t1/…/tn BLAS accesses only tuples whose
    // P-label is contained in the query's — bounded by the result size
    // (no value predicates here).
    let db = load(DatasetId::Shakespeare);
    let r = db
        .query_with("/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE", Translator::PushUp, Engine::Rdbms)
        .unwrap();
    assert_eq!(r.stats.elements_visited as usize, r.stats.result_count);
    assert_eq!(r.stats.d_joins, 0);
}

#[test]
fn pushup_beats_split_on_twigs() {
    // §5.2.3: Push-up's selections are more specific than Split's on
    // branching queries.
    let db = load(DatasetId::Auction);
    let split = db
        .query_with(
            "/site/regions/asia/item[shipping]/description",
            Translator::Split,
            Engine::Rdbms,
        )
        .unwrap()
        .stats;
    let pushup = db
        .query_with(
            "/site/regions/asia/item[shipping]/description",
            Translator::PushUp,
            Engine::Rdbms,
        )
        .unwrap()
        .stats;
    assert!(pushup.elements_visited < split.elements_visited, "{pushup:?} vs {split:?}");
    assert_eq!(pushup.d_joins, split.d_joins);
}

#[test]
fn unfold_eliminates_descendant_joins() {
    let db = load(DatasetId::Protein);
    let q = "/ProteinDatabase/ProteinEntry//authors/author";
    let pushup = db.query_with(q, Translator::PushUp, Engine::Rdbms).unwrap().stats;
    let unfold = db.query_with(q, Translator::Unfold, Engine::Rdbms).unwrap().stats;
    assert!(unfold.d_joins < pushup.d_joins);
    assert_eq!(unfold.result_count, pushup.result_count);
}

#[test]
fn attribute_queries_work_end_to_end() {
    let db = load(DatasetId::Auction);
    let r = db.query("/site/people/person/@id", EngineChoice::auto()).unwrap();
    assert!(r.stats.result_count > 0);
    assert!(db.texts(&r).iter().flatten().all(|t| t.starts_with("person")));
}

/// Release-mode smoke for the sharded scan path on a real dataset:
/// every Fig. 10 auction query under 2- and 4-way sharding returns the
/// same nodes and counters as sequential execution, on all engines.
/// Ignored by default (it generates Auction ×2); the CI
/// `--include-ignored` release job runs it.
#[test]
#[ignore = "release-mode parallel-equivalence smoke; run via --include-ignored"]
fn parallel_execution_smoke_on_auction() {
    let db = BlasDb::load(&DatasetId::Auction.generate(2)).expect("well-formed");
    for q in query_set(DatasetId::Auction) {
        for engine in [Engine::Rdbms, Engine::Twig, Engine::TwigStack] {
            let stripped = parse(q.xpath).unwrap().without_value_predicates();
            let base = EngineChoice::auto().with_engine(engine).with_translator(Translator::PushUp);
            let seq = db.run(&stripped, base).unwrap();
            for shards in [2, 4] {
                let par = db.run(&stripped, base.with_shards(shards)).unwrap();
                assert_eq!(par.nodes, seq.nodes, "{} {engine:?} @ {shards}", q.id);
                assert_eq!(
                    par.stats.elements_visited, seq.stats.elements_visited,
                    "{} {engine:?} @ {shards}",
                    q.id
                );
                assert_eq!(par.stats.d_joins, seq.stats.d_joins);
                assert_eq!(par.stats.join_input_tuples, seq.stats.join_input_tuples);
            }
        }
    }
}

#[test]
fn storage_is_bounded_like_the_paper_claims() {
    // §7: "the space used to represent an XML document is comparable to
    // the size of the original document" — 4 numbers + data per node.
    let xml = DatasetId::Shakespeare.generate(1);
    let db = BlasDb::load(&xml).unwrap();
    let per_node = std::mem::size_of::<u128>() + 2 * std::mem::size_of::<u32>() + std::mem::size_of::<u16>();
    let label_bytes = db.store().len() * per_node;
    assert!(
        label_bytes < 2 * xml.len(),
        "label storage {} vs document {}",
        label_bytes,
        xml.len()
    );
}
