//! End-to-end suite for binary wire protocol v2 and stream-id
//! multiplexing: eight logical clients share **one** TCP socket
//! ([`MuxClient`] clones over a [`MuxConn`]) and race queries against a
//! mutating server, every answer checked against the same sequential
//! oracle as `server_concurrency.rs` — for exactly the generation the
//! server stamped on it. Plus the v2-specific paths: out-of-order
//! stream completion, per-stream typed `overloaded`, multi-document
//! routing with per-document cache invalidation, protocol gating, the
//! json ≡ binary end-to-end agreement, and the client-side
//! write-timeout poisoning regression.

use blas::{BlasCollection, BlasDb, DLabel, EngineChoice};
use blas_server::{
    Client, ClientError, Json, MuxClient, Proto, ProtoAccept, Server, ServerConfig,
};
use std::collections::HashSet;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Logical clients multiplexed onto the single socket.
const CLIENTS: usize = 8;
/// Mutation steps; the suite spans generations `0..=STEPS`.
const STEPS: usize = 9;

const SRC: &str = concat!(
    "<db><e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
    "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e></db>"
);
const QUERIES: &[&str] = &["//n", "//y", "/db/e", "//e[p]"];
const ENGINES: &[&str] = &["auto", "rdbms", "twig", "twigstack"];

/// A recorded mutation, replayable over the wire.
#[derive(Debug, Clone)]
enum Op {
    Insert { parent: u32, xml: String },
    Retag { start: u32, tag: String },
    Delete { start: u32 },
}

/// Replay the deterministic mutation script on the oracle, recording
/// the wire-replayable ops and every query's answer per generation
/// (identical to `server_concurrency.rs`, so both suites hold the
/// server to the same truth).
fn build_script(oracle: &BlasDb) -> (Vec<Op>, Vec<Vec<Vec<DLabel>>>) {
    let answers = |db: &BlasDb| -> Vec<Vec<DLabel>> {
        QUERIES
            .iter()
            .map(|q| db.query(q, EngineChoice::auto()).unwrap().nodes)
            .collect()
    };
    let mut ops = Vec::with_capacity(STEPS);
    let mut expected = vec![answers(oracle)];
    for step in 0..STEPS {
        let snap = oracle.snapshot();
        let op = match step % 3 {
            0 => Op::Insert { parent: 0, xml: "<e><p><n>new</n></p></e>".into() },
            1 => {
                let rec = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 4)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r)
                    .unwrap();
                let to = if oracle.tags().name(rec.tag) == "n" { "y" } else { "n" };
                Op::Retag { start: rec.start, tag: to.into() }
            }
            _ => {
                let start = snap
                    .store()
                    .scan_all()
                    .filter(|(_, r)| r.level == 2)
                    .max_by_key(|(_, r)| r.start)
                    .map(|(_, r)| r.start)
                    .unwrap();
                Op::Delete { start }
            }
        };
        let generation = match &op {
            Op::Insert { parent, xml } => oracle.insert_subtree(*parent, xml).unwrap(),
            Op::Retag { start, tag } => oracle.retag(*start, tag).unwrap(),
            Op::Delete { start } => oracle.delete(*start).unwrap(),
        };
        assert_eq!(generation, (step + 1) as u64, "oracle script must be deterministic");
        ops.push(op);
        expected.push(answers(oracle));
    }
    (ops, expected)
}

fn as_triples(labels: &[DLabel]) -> Vec<(u32, u32, u16)> {
    labels.iter().map(|d| (d.start, d.end, d.level)).collect()
}

/// Tentpole acceptance: eight logical clients — one replaying the
/// mutation script, seven firing queries across all four engine
/// tokens — interleaved over **one** multiplexed binary socket, with
/// every reply matching the oracle for the generation the server
/// reported. The server must see exactly one connection.
#[test]
fn eight_multiplexed_clients_race_mutations_on_one_socket() {
    let oracle = BlasDb::load(SRC).unwrap();
    let (script, expected) = build_script(&oracle);

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { read_timeout: Some(Duration::from_secs(30)), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let mux = MuxClient::connect(addr, Some(Duration::from_secs(30))).expect("mux connects");
    let done = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    let observed: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    // Everyone completes a generation-0 round before the writer
    // starts, so generation 0 is deterministically covered.
    let start = Barrier::new(CLIENTS);

    std::thread::scope(|s| {
        for client_no in 0..CLIENTS - 1 {
            let reader = mux.clone();
            let (expected, done, checked, observed, start) =
                (&expected, &done, &checked, &observed, &start);
            s.spawn(move || {
                let mut round = 0usize;
                let check_round = |round: usize| {
                    for (qi, q) in QUERIES.iter().enumerate() {
                        let engine = ENGINES[(client_no + round + qi) % ENGINES.len()];
                        let reply = reader
                            .query(q, engine)
                            .unwrap_or_else(|e| panic!("{q} on {engine}: {e}"));
                        let generation = reply.generation as usize;
                        assert_eq!(
                            reply.nodes,
                            as_triples(&expected[generation][qi]),
                            "stream {client_no}: {q} on {engine} diverged from the \
                             oracle at generation {generation}"
                        );
                        assert_eq!(reply.count, expected[generation][qi].len());
                        observed.lock().unwrap().insert(reply.generation);
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                };
                check_round(round);
                start.wait();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    round += 1;
                    check_round(round);
                    if finished {
                        break;
                    }
                }
            });
        }

        // The writer stream: replays the script, and after each
        // publish verifies the new generation's answers itself.
        let writer = mux.clone();
        let (script, expected, done, observed, start) =
            (&script, &expected, &done, &observed, &start);
        s.spawn(move || {
            start.wait();
            for (step, op) in script.iter().enumerate() {
                let generation = match op {
                    Op::Insert { parent, xml } => writer.insert_subtree(*parent, xml),
                    Op::Retag { start, tag } => writer.retag(*start, tag),
                    Op::Delete { start } => writer.delete(*start),
                }
                .unwrap_or_else(|e| panic!("step {step} ({op:?}): {e}"));
                assert_eq!(generation, (step + 1) as u64, "wire replay must track the oracle");
                for (qi, q) in QUERIES.iter().enumerate() {
                    let reply = writer.query(q, "auto").unwrap();
                    assert_eq!(
                        reply.generation, generation,
                        "single writer: generation is stable between its steps"
                    );
                    assert_eq!(reply.nodes, as_triples(&expected[generation as usize][qi]));
                }
                observed.lock().unwrap().insert(generation);
            }
            // A structurally invalid mutation is the typed wire error
            // on *its own stream*, not a connection failure.
            let err = writer.delete(9_999).expect_err("deleting a missing node");
            assert!(
                matches!(&err, ClientError::Rpc { code, .. } if code == "mutation"),
                "expected a typed mutation rejection, got {err}"
            );
            done.store(true, Ordering::Release);
        });
    });

    let observed = observed.into_inner().unwrap();
    assert!(
        (0..=STEPS as u64).all(|g| observed.contains(&g)),
        "every generation 0..={STEPS} must have answered queries, saw {observed:?}"
    );
    assert!(checked.load(Ordering::Relaxed) >= (CLIENTS - 1) * 2 * QUERIES.len());
    assert_eq!(db.generation(), STEPS as u64);
    assert!(!mux.conn().is_dead(), "the shared connection must outlive the race");

    let stats = server.shutdown();
    assert_eq!(
        stats.connections_accepted, 1,
        "eight logical clients must multiplex over exactly one connection"
    );
    assert_eq!(stats.overloaded, 0, "nothing should be rejected under the default bound");
    assert!(stats.served as usize >= checked.load(Ordering::Relaxed));
}

/// Streams complete out of order: a held query on one stream must not
/// block a later, faster query on another stream of the same socket.
#[test]
fn streams_complete_out_of_order_on_one_socket() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { debug_hold: true, ..Default::default() },
    )
    .unwrap();
    let mux = MuxClient::connect(server.local_addr(), Some(Duration::from_secs(30))).unwrap();

    let held = mux.clone();
    let held_done: Mutex<Option<Instant>> = Mutex::new(None);
    let quick_done = std::thread::scope(|s| {
        let held_done = &held_done;
        let slow = s.spawn(move || {
            let reply = held.query_hold("//n", "auto", 1_500).expect("held query answers");
            *held_done.lock().unwrap() = Some(Instant::now());
            reply
        });
        // Give the held stream time to be admitted first.
        std::thread::sleep(Duration::from_millis(150));
        let reply = mux.query("//y", "auto").expect("quick query answers");
        let quick_done = Instant::now();
        assert!(
            !slow.is_finished(),
            "the held stream must still be in flight when the quick stream answers"
        );
        assert_eq!(reply.count, 2);
        quick_done
    });
    let held_done = held_done.into_inner().unwrap().expect("held stream completed");
    assert!(
        quick_done < held_done,
        "the later stream must complete before the earlier held stream"
    );
    server.shutdown();
}

/// Admission control is per stream: with one in-flight slot held, a
/// second stream on the same socket is rejected with a typed
/// `overloaded` on *its* stream id — the connection survives, and
/// admission-exempt methods keep working throughout.
#[test]
fn saturated_slot_rejects_sibling_streams_with_typed_overloaded() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 1, debug_hold: true, ..Default::default() },
    )
    .unwrap();
    let mux = MuxClient::connect(server.local_addr(), Some(Duration::from_secs(30))).unwrap();

    let held = mux.clone();
    std::thread::scope(|s| {
        let slow = s.spawn(move || held.query_hold("//n", "auto", 1_200));
        // Let the held stream win the slot first — binary admission is
        // immediate-reject, so an early probe could bounce *it* instead.
        std::thread::sleep(Duration::from_millis(150));
        let mut rejected = false;
        for _ in 0..50 {
            match mux.query_count("//y", "auto", false) {
                Err(e) if e.is_overloaded() => {
                    rejected = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => panic!("expected overloaded or success, got {e}"),
            }
        }
        assert!(rejected, "a saturated slot must reject sibling streams");
        // Exempt methods bypass admission even while saturated.
        let stats = mux.stats().expect("stats bypasses admission");
        assert_eq!(stats.get("db").and_then(Json::as_str), Some("default"));
        assert!(slow.join().unwrap().is_ok(), "the held stream still answers");
    });
    // The connection is intact: the slot is free again.
    assert!(mux.query_count("//y", "auto", false).is_ok());

    let stats = server.shutdown();
    assert!(stats.overloaded >= 1);
    assert_eq!(stats.connections_accepted, 1);
}

/// Requests carry a database name: one socket reaches every document
/// in the collection, the result cache is keyed per document, and a
/// mutation on one document never invalidates another's entries.
#[test]
fn multiplexed_requests_route_to_named_documents() {
    let mut coll = BlasCollection::new();
    coll.add_shared("alpha", Arc::new(BlasDb::load(SRC).unwrap()));
    coll.add_shared("beta", Arc::new(BlasDb::load("<db><x/><x/><x/></db>").unwrap()));
    let server =
        Server::bind_collection(coll, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mux = MuxClient::connect(server.local_addr(), Some(Duration::from_secs(30))).unwrap();
    let alpha = mux.on_db("alpha");
    let beta = mux.on_db("beta");

    // Routing: the same xpath answers differently per document, and
    // the empty name selects the first member (alpha).
    assert_eq!(alpha.query("//n", "auto").unwrap().count, 2);
    assert_eq!(beta.query("//x", "auto").unwrap().count, 3);
    assert_eq!(beta.query("//n", "auto").unwrap().count, 0);
    assert_eq!(mux.query("//n", "auto").unwrap().count, 2);

    // Both documents have warm cache entries now.
    assert!(alpha.query("//n", "auto").unwrap().cached);
    assert!(beta.query("//x", "auto").unwrap().cached);

    // Mutating alpha invalidates alpha's entries only.
    let generation = alpha.insert_subtree(0, "<e><p><n>new</n></p></e>").unwrap();
    assert_eq!(generation, 1);
    let fresh = alpha.query("//n", "auto").unwrap();
    assert_eq!((fresh.generation, fresh.count, fresh.cached), (1, 3, false));
    let kept = beta.query("//x", "auto").unwrap();
    assert_eq!((kept.generation, kept.count, kept.cached), (0, 3, true));

    // Per-document stats see through the same socket.
    let stats = beta.stats().unwrap();
    assert_eq!(stats.get("db").and_then(Json::as_str), Some("beta"));
    assert_eq!(stats.get("documents").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("generation").and_then(Json::as_u64), Some(0));
    let invalidated = stats
        .get("result_cache")
        .and_then(|c| c.get("invalidated"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(invalidated >= 1, "alpha's publish must have dropped its stale entries");

    // An unknown name is a typed error on that stream, not a dead socket.
    let err = mux.on_db("gamma").query("//n", "auto").expect_err("unknown database");
    assert!(matches!(&err, ClientError::Rpc { code, .. } if code == "bad_request"));
    assert_eq!(alpha.query("//n", "auto").unwrap().count, 3);

    // A JSON client reaches the same documents on the same server.
    let mut json_client = Client::connect(server.local_addr(), None).unwrap();
    assert_eq!(json_client.query_on("beta", "//x", "auto").unwrap().count, 3);
    assert_eq!(json_client.query_on("alpha", "//n", "auto").unwrap().count, 3);
    server.shutdown();
}

/// The two encodings agree end to end: a JSON client and a binary
/// client against the same live server get member-for-member identical
/// replies for every query × engine, before and after a mutation.
#[test]
fn binary_and_json_clients_agree_end_to_end() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut json_client = Client::connect(addr, Some(Duration::from_secs(10))).unwrap();
    let mut bin_client =
        Client::connect_with(addr, Some(Duration::from_secs(10)), Proto::Binary).unwrap();
    assert_eq!(bin_client.proto(), Proto::Binary);

    let agree = |json_client: &mut Client, bin_client: &mut Client| {
        for q in QUERIES {
            for engine in ENGINES {
                // Bypass the cache so `cached` can't differ by arrival order.
                let a = json_client.query_count(q, engine, false).unwrap();
                let b = bin_client.query_count(q, engine, false).unwrap();
                assert_eq!(a, b, "{q} on {engine} must agree across encodings");
                let a = json_client.query(q, engine).unwrap();
                let b = bin_client.query(q, engine).unwrap();
                assert_eq!(
                    (a.generation, a.count, &a.nodes),
                    (b.generation, b.count, &b.nodes),
                    "{q} on {engine}: labeled replies must agree across encodings"
                );
            }
        }
    };
    agree(&mut json_client, &mut bin_client);

    // A mutation through the binary client is visible to both.
    let generation = bin_client.insert_subtree(0, "<e><p><n>new</n></p></e>").unwrap();
    assert_eq!(generation, 1);
    assert_eq!(json_client.query("//n", "auto").unwrap().generation, 1);
    agree(&mut json_client, &mut bin_client);

    // Admin methods have full parity too.
    let a = json_client.stats().unwrap();
    let b = bin_client.stats().unwrap();
    assert_eq!(a.get("db"), b.get("db"));
    assert_eq!(a.get("documents"), b.get("documents"));
    assert_eq!(a.get("generation"), b.get("generation"));
    assert!(bin_client.clear_cache().unwrap() >= 1);
    server.shutdown();
}

/// `ServerConfig::proto` gates each encoding with a typed farewell:
/// a JSON client against a binary-only server gets `bad_request`, and
/// a binary hello against a JSON-only server fails its first call.
#[test]
fn proto_gates_reject_the_other_encoding() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { proto: ProtoAccept::Binary, ..Default::default() },
    )
    .unwrap();
    let mut json_client = Client::connect(server.local_addr(), Some(Duration::from_secs(5)))
        .expect("TCP connect succeeds; the gate answers the first frame");
    let err = json_client.query("//n", "auto").expect_err("JSON is gated off");
    assert!(
        matches!(&err, ClientError::Rpc { code, .. } if code == "bad_request"),
        "expected a typed bad_request farewell, got {err}"
    );
    server.shutdown();

    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { proto: ProtoAccept::Json, ..Default::default() },
    )
    .unwrap();
    let mut bin_client =
        Client::connect_with(server.local_addr(), Some(Duration::from_secs(5)), Proto::Binary)
            .unwrap();
    assert!(bin_client.query("//n", "auto").is_err(), "binary is gated off");
    let mux = MuxClient::connect(server.local_addr(), Some(Duration::from_secs(5))).unwrap();
    assert!(mux.query("//n", "auto").is_err(), "mux (binary) is gated off");
    // JSON still works on the same server.
    let mut json_client =
        Client::connect(server.local_addr(), Some(Duration::from_secs(5))).unwrap();
    assert_eq!(json_client.query("//n", "auto").unwrap().count, 2);
    server.shutdown();
}

/// Regression for the write-timeout bugfix: a frame write that times
/// out midway may have left a partial frame on the socket, so the
/// client must poison the connection — the failed call surfaces the
/// transport error and every later call fails fast with `Poisoned`
/// instead of desyncing the stream.
#[test]
fn write_timeout_mid_frame_poisons_the_client() {
    // A peer that accepts and then never reads: the client's write
    // fills the socket buffers and must hit its write timeout.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        // Hold the socket open, unread, long past the client timeout.
        std::thread::sleep(Duration::from_secs(3));
        drop(sock);
    });

    let mut client = Client::connect(addr, Some(Duration::from_millis(300))).unwrap();
    assert!(!client.is_poisoned());
    // Far larger than any kernel send+receive buffer pair, well under
    // the 16 MiB frame bound: the write must block mid-frame.
    let huge = "x".repeat(8 << 20);
    let err = client.query(&huge, "auto").expect_err("the write must time out");
    assert!(matches!(err, ClientError::Io(_)), "expected a transport error, got {err}");
    assert!(client.is_poisoned(), "a mid-frame write failure must poison the connection");
    let err = client.query("//n", "auto").expect_err("poisoned connections fail fast");
    assert!(matches!(err, ClientError::Poisoned), "expected Poisoned, got {err}");
    hold.join().unwrap();
}

/// Graceful drain over the mux: a held stream in flight at shutdown
/// still gets its answer; afterwards the connection reports dead and
/// new calls fail fast.
#[test]
fn mux_connection_drains_on_shutdown() {
    let db = Arc::new(BlasDb::load(SRC).unwrap());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { debug_hold: true, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let mux = MuxClient::connect(addr, Some(Duration::from_secs(30))).unwrap();

    let held = mux.clone();
    let reply = std::thread::scope(|s| {
        let pending = s.spawn(move || held.query_hold("//n", "auto", 600));
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown();
        pending.join().unwrap()
    });
    assert_eq!(reply.expect("in-flight stream answered during drain").count, 2);

    // The drained server is gone: the socket closes and later calls
    // fail fast instead of hanging.
    for _ in 0..100 {
        if mux.conn().is_dead() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(mux.conn().is_dead());
    assert!(mux.query("//n", "auto").is_err());
    assert!(
        Client::connect(addr, Some(Duration::from_millis(200)))
            .and_then(|mut c| c.query("//n", "auto"))
            .is_err(),
        "the listening socket must be gone after shutdown"
    );
}
