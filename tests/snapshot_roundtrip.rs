//! Snapshot persistence: a database restored from its snapshot must be
//! indistinguishable from the original — same labels, same plans, same
//! answers, same statistics — on all three paper datasets.

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_datagen::{query_set, DatasetId};

/// The document behind the checked-in `tests/fixtures/tiny_v2.snap`.
const V2_FIXTURE_XML: &str = "<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>";
const V2_FIXTURE_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_v2.snap");

#[test]
fn snapshot_round_trip_preserves_query_behavior() {
    for ds in DatasetId::ALL {
        let xml = ds.generate(1);
        let original = BlasDb::load(&xml).unwrap();
        let bytes = original.to_snapshot();
        let restored = BlasDb::from_snapshot(&bytes).unwrap();

        assert_eq!(original.store().len(), restored.store().len(), "{}", ds.name());
        assert_eq!(original.domain(), restored.domain(), "{}", ds.name());
        assert_eq!(
            original.document().tags().len(),
            restored.document().tags().len(),
            "{}",
            ds.name()
        );

        for q in query_set(ds) {
            for t in [Translator::DLabeling, Translator::PushUp, Translator::Unfold] {
                let a = original.query_with(q.xpath, t, Engine::Rdbms).unwrap();
                let b = restored.query_with(q.xpath, t, Engine::Rdbms).unwrap();
                assert_eq!(a.nodes, b.nodes, "{} {t:?}", q.id);
                assert_eq!(
                    a.stats.elements_visited, b.stats.elements_visited,
                    "{} {t:?} visits",
                    q.id
                );
                assert_eq!(original.texts(&a), restored.texts(&b), "{} {t:?} texts", q.id);
            }
            // Plans bind identically (same domain, same tag ids).
            assert_eq!(
                original.explain_sql(q.xpath, Translator::PushUp).unwrap(),
                restored.explain_sql(q.xpath, Translator::PushUp).unwrap(),
                "{}",
                q.id
            );
        }
    }
}

#[test]
fn snapshot_is_compact() {
    let xml = DatasetId::Shakespeare.generate(1);
    let db = BlasDb::load(&xml).unwrap();
    let bytes = db.to_snapshot();
    // §7: labeled form is "comparable to the size of the original
    // document". The sectioned format persists *both* clustered
    // permutations and both run directories (that is what makes the
    // mmap'd file queryable with zero decode), but since the v3 packed
    // encodings (delta/FOR label planes, bitpacked tags,
    // dictionary-coded plabels) that redundancy compresses back below
    // the raw-column format's ~2–3×.
    assert!(
        bytes.len() < 3 * xml.len() / 2,
        "snapshot {} vs xml {}",
        bytes.len(),
        xml.len()
    );
}

/// Backward compatibility: a version-2 (all-raw-sections) file written
/// by the previous format revision must keep opening through **both**
/// read paths. The fixture is checked in, so this guards against the
/// reader accidentally requiring v3 descriptors; regenerate it with
/// `cargo test regenerate_v2_fixture -- --ignored` only after an
/// intentional compatibility break (and bump MIN_VERSION accordingly).
#[test]
fn checked_in_v2_fixture_opens_via_both_paths() {
    let bytes = std::fs::read(V2_FIXTURE_PATH).expect("fixture checked in");
    assert_eq!(bytes[8], 2, "fixture must be a version-2 file");
    let reference = BlasDb::load(V2_FIXTURE_XML).unwrap();
    let restored = BlasDb::from_snapshot(&bytes).unwrap();
    let mapped = BlasDb::open_mapped(V2_FIXTURE_PATH).unwrap();
    assert!(mapped.store().is_mapped());
    assert_eq!(restored.store().len(), reference.store().len());
    assert_eq!(mapped.store().len(), reference.store().len());
    for xpath in ["//n", "/db/e/n", "/db/x//n", "//e[n]"] {
        let a = reference.query(xpath, EngineChoice::auto()).unwrap();
        let b = restored.query(xpath, EngineChoice::auto()).unwrap();
        let c = mapped.query(xpath, EngineChoice::auto()).unwrap();
        assert_eq!(a.nodes, b.nodes, "{xpath} restored");
        assert_eq!(a.nodes, c.nodes, "{xpath} mapped");
        assert_eq!(reference.texts(&a), restored.texts(&b), "{xpath} texts");
        assert_eq!(reference.texts(&a), mapped.texts(&c), "{xpath} texts mapped");
    }
}

/// Writes `tests/fixtures/tiny_v2.snap`. Ignored: the fixture is
/// supposed to stay byte-stable in the repository; rerun explicitly
/// only on an intentional format change.
#[test]
#[ignore = "regenerates the checked-in v2 compatibility fixture"]
fn regenerate_v2_fixture() {
    let db = BlasDb::load(V2_FIXTURE_XML).unwrap();
    let tag_names: Vec<String> =
        db.document().tags().iter().map(|(_, n)| n.to_string()).collect();
    let bytes = blas_storage::snapshot::encode_store_v2(
        db.store(),
        &tag_names,
        db.domain().num_tags() as u32,
        db.domain().digits(),
    );
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
    std::fs::write(V2_FIXTURE_PATH, bytes).unwrap();
}

#[test]
fn corrupted_snapshot_rejected() {
    let db = BlasDb::load("<a><b>x</b></a>").unwrap();
    let mut bytes = db.to_snapshot();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(BlasDb::from_snapshot(&bytes).is_err());
    assert!(BlasDb::from_snapshot(&[]).is_err());
}

#[test]
fn mapped_open_round_trips_on_all_datasets() {
    for ds in DatasetId::ALL {
        let xml = ds.generate(1);
        let original = BlasDb::load(&xml).unwrap();
        let path = std::env::temp_dir().join(format!(
            "blas_roundtrip_{}_{}.snap",
            ds.name(),
            std::process::id()
        ));
        std::fs::write(&path, original.to_snapshot()).unwrap();
        let mapped = BlasDb::open_mapped(&path).unwrap();
        assert!(mapped.store().is_mapped(), "{}", ds.name());
        assert_eq!(original.store().len(), mapped.store().len(), "{}", ds.name());
        assert_eq!(original.domain(), mapped.domain(), "{}", ds.name());
        for q in query_set(ds) {
            let a = original.query_with(q.xpath, Translator::PushUp, Engine::Rdbms).unwrap();
            let b = mapped.query_with(q.xpath, Translator::PushUp, Engine::Rdbms).unwrap();
            assert_eq!(a.nodes, b.nodes, "{} {}", ds.name(), q.id);
            assert_eq!(original.texts(&a), mapped.texts(&b), "{} {}", ds.name(), q.id);
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn snapshot_preserves_attributes_and_mixed_text() {
    let src = "<db><e id=\"1\">head<n>x</n>tail</e></db>";
    let db = BlasDb::load(src).unwrap();
    let restored = BlasDb::from_snapshot(&db.to_snapshot()).unwrap();
    let a = db.query("/db/e/@id", EngineChoice::auto()).unwrap();
    let b = restored.query("/db/e/@id", EngineChoice::auto()).unwrap();
    assert_eq!(db.texts(&a), restored.texts(&b));
    assert_eq!(restored.texts(&b), [Some("1".to_string())]);
    // Concatenated mixed text survives.
    let e = restored.query("/db/e", EngineChoice::auto()).unwrap();
    assert_eq!(restored.texts(&e), [Some("headtail".to_string())]);
}
