//! Domain example: a concordance over the Shakespeare corpus —
//! counting lines per act/scene, finding stage directions nested in
//! epilogue lines (QS2), and scene lookup by title (QS3).
//!
//! ```sh
//! cargo run --release --example shakespeare_concordance
//! ```

use blas::{BlasDb, EngineChoice, Translator};
use blas_datagen::shakespeare;

fn main() {
    let xml = shakespeare(1, 42);
    println!("Generating + indexing Shakespeare corpus ({:.1} MB)…", xml.len() as f64 / 1e6);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    let stats = db.stats(xml.len());
    println!("Indexed {} nodes, {} tags, depth {}\n", stats.nodes, stats.tags, stats.depth);

    // QS1: every spoken line — a 6-step child chain, answered by one
    // P-label equality selection instead of five D-joins.
    let lines = db.query("/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE", EngineChoice::auto()).unwrap();
    let baseline = db
        .query(
            "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
            EngineChoice::rdbms().with_translator(Translator::DLabeling),
        )
        .unwrap();
    println!(
        "QS1  lines: {} (BLAS read {} elements with {} joins; baseline read {} with {})",
        lines.stats.result_count,
        lines.stats.elements_visited,
        lines.stats.d_joins,
        baseline.stats.elements_visited,
        baseline.stats.d_joins,
    );

    // Structure census via suffix path queries.
    println!("\nCorpus census:");
    for (what, q) in [
        ("plays", "/PLAYS/PLAY"),
        ("acts", "//ACT"),
        ("scenes", "//ACT/SCENE"),
        ("speeches", "//SPEECH"),
        ("epilogues", "//EPILOGUE"),
    ] {
        println!(
            "  {:<10} {:>7}",
            what,
            db.query(q, EngineChoice::auto()).unwrap().stats.result_count
        );
    }

    // QS2: stage directions nested inside epilogue lines.
    let qs2 = db.query("/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR", EngineChoice::auto()).unwrap();
    println!("\nQS2  stage directions in epilogue lines: {}", qs2.stats.result_count);
    for t in db.texts(&qs2).into_iter().flatten().take(3) {
        println!("  → [{t}]");
    }

    // QS3: all lines of scenes titled "SCENE III. A public place."
    let qs3 = "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE";
    let hits = db.query(qs3, EngineChoice::auto()).unwrap();
    println!("\nQS3  lines in public-place third scenes: {}", hits.stats.result_count);

    // Speakers of those scenes, by joining through the same predicate.
    let speakers = db
        .query(
            "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']/SPEECH/SPEAKER",
            EngineChoice::auto(),
        )
        .unwrap();
    let mut names: Vec<String> = db.texts(&speakers).into_iter().flatten().collect();
    names.sort();
    names.dedup();
    println!("     spoken by {} distinct speakers: {}", names.len(), names.join(", "));
}
