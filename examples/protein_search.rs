//! Domain example: the paper's §1 motivating scenario — a biologist
//! searching a protein repository for papers about the "cytochrome c"
//! family — on a full-size synthetic Protein dataset.
//!
//! ```sh
//! cargo run --release --example protein_search
//! ```

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_datagen::protein;

fn main() {
    let xml = protein(1, 42);
    println!("Generating + indexing Protein dataset ({:.1} MB)…", xml.len() as f64 / 1e6);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    let stats = db.stats(xml.len());
    println!(
        "Indexed {} nodes, {} tags, depth {}\n",
        stats.nodes, stats.tags, stats.depth
    );

    // 1. All protein names (QP1, a suffix path query → one equality
    //    selection on P-labels).
    let names = db
        .query("/ProteinDatabase/ProteinEntry/protein/name", EngineChoice::auto())
        .unwrap();
    println!(
        "QP1  protein names: {} results, {} elements read, {} joins",
        names.stats.result_count, names.stats.elements_visited, names.stats.d_joins
    );

    // 2. Papers by a specific author (QP2, path with interior //).
    let by_daniel = db
        .query(
            "/ProteinDatabase/ProteinEntry//authors/author='Daniel, M.'",
            EngineChoice::auto(),
        )
        .unwrap();
    println!(
        "QP2  papers by Daniel, M.: {} results, {} elements read",
        by_daniel.stats.result_count, by_daniel.stats.elements_visited
    );

    // 3. Names of proteins whose references carry both citation and
    //    year (QP3, a twig).
    let qp3 = "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name";
    let full = db.query(qp3, EngineChoice::auto()).unwrap();
    println!("QP3  fully-cited proteins: {} results", full.stats.result_count);

    // 4. The biologist's query from the introduction (Fig. 2 shape):
    //    titles of cytochrome c papers by a remembered author. (The
    //    paper's exact year predicate is kept in `quickstart`; here we
    //    relax it so the synthetic corpus reliably has hits.)
    let fig2 = "/ProteinDatabase/ProteinEntry[protein//superfamily='cytochrome c']\
                /reference/refinfo[//author='Daniel, M.']/title";
    let result = db.query(fig2, EngineChoice::auto()).unwrap();
    println!("\nFig. 2-style query → {} title(s):", result.stats.result_count);
    for t in db.texts(&result).into_iter().flatten().take(3) {
        println!("  → {t}");
    }

    // Show why BLAS wins: same twig on all translator/engine combos.
    println!(
        "\n{:<12} {:<7} {:>10} {:>12} {:>10}",
        "translator", "engine", "d-joins", "elements", "time"
    );
    for (name, t) in [
        ("D-labeling", Translator::DLabeling),
        ("Split", Translator::Split),
        ("Push-up", Translator::PushUp),
        ("Unfold", Translator::Unfold),
    ] {
        for (ename, e) in [("rdbms", Engine::Rdbms), ("twig", Engine::Twig)] {
            let choice = EngineChoice::auto().with_engine(e).with_translator(t);
            let Ok(r) = db.query(qp3, choice) else {
                continue; // Unfold unions don't run on the twig engine
            };
            println!(
                "{:<12} {:<7} {:>10} {:>12} {:>9.2?}",
                name, ename, r.stats.d_joins, r.stats.elements_visited, r.stats.elapsed
            );
        }
    }
}
