//! Domain example: one `BlasCollection` over heterogeneous corpora —
//! the multi-document extension §3 sketches ("introducing document id
//! information into the labeling scheme").
//!
//! ```sh
//! cargo run --release --example multi_corpus
//! ```

use blas::{BlasCollection, Engine, EngineChoice, Translator};
use blas_datagen::DatasetId;

fn main() {
    let mut collection = BlasCollection::new();
    println!("Building a three-corpus collection…");
    for ds in DatasetId::ALL {
        let xml = ds.generate(1);
        let id = collection.add(ds.name(), &xml).expect("well-formed");
        let db = collection.doc(id);
        println!(
            "  [{}] {:<12} {:>7} nodes, {:>2} tags, depth {:>2}, m = {}",
            id.0,
            ds.name(),
            db.store().len(),
            db.document().tags().len(),
            db.document().depth(),
            db.domain().m()
        );
    }

    // Cross-corpus structural queries: each document keeps its own
    // label space; the collection fans out and qualifies results.
    println!("\nCross-corpus queries (matches per document):");
    for q in [
        "//name",              // protein names, item names, person names
        "//description",       // auction + protein descriptions
        "//TITLE",             // Shakespeare only
        "//author",            // protein references + auction annotations
    ] {
        let results = collection.query(q, EngineChoice::auto()).expect("valid query");
        let cells: Vec<String> = results
            .iter()
            .map(|(id, r)| format!("{}={}", collection.name(*id), r.stats.result_count))
            .collect();
        println!("  {:<16} {}", q, cells.join("  "));
    }

    // The merged schema spans all corpora.
    let schema = collection.merged_schema();
    println!(
        "\nMerged schema: {} tags, roots = [{}], recursive = {}",
        schema.tags().count(),
        schema.roots().collect::<Vec<_>>().join(", "),
        schema.is_recursive()
    );

    // Engines and translators still apply per member.
    let per_engine: Vec<usize> = [Engine::Rdbms, Engine::Twig, Engine::TwigStack]
        .into_iter()
        .map(|e| {
            collection
                .query_with("//author", Translator::PushUp, e)
                .unwrap()
                .iter()
                .map(|(_, r)| r.stats.result_count)
                .sum()
        })
        .collect();
    println!(
        "//author totals per engine (rdbms/twig/twigstack): {:?} — identical by construction",
        per_engine
    );
    assert!(per_engine.windows(2).all(|w| w[0] == w[1]));
}
