//! Plan explorer: print the logical plan and Fig.-11-style relational
//! algebra that each translator generates for a query.
//!
//! ```sh
//! cargo run --example plan_explorer -- "<xpath>"
//! # default query: the paper's QS3
//! cargo run --example plan_explorer
//! ```

use blas::{BlasDb, Translator};
use blas_datagen::shakespeare;

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| {
        "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE".to_string()
    });

    // A small Shakespeare instance provides the tag inventory and
    // schema the translators bind against.
    let xml = shakespeare(1, 42);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");

    println!("Query: {query}\n");
    for (name, t) in [
        ("D-labeling (baseline)", Translator::DLabeling),
        ("Split", Translator::Split),
        ("Push-up", Translator::PushUp),
        ("Unfold", Translator::Unfold),
    ] {
        println!("=== {name} ===");
        match db.plan(&query, t) {
            Ok(plan) => {
                let s = plan.summary();
                println!(
                    "d-joins: {}  eq-selections: {}  range-selections: {}  tag-scans: {}  unions: {}",
                    s.d_joins, s.eq_selections, s.range_selections, s.tag_scans, s.unions
                );
                println!("{plan}");
                match db.explain(&query, t) {
                    Ok(algebra) => println!("{algebra}\n"),
                    Err(e) => println!("(bind failed: {e})\n"),
                }
            }
            Err(e) => println!("not translatable: {e}\n"),
        }
    }
}
