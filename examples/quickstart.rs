//! Quickstart: load XML, run a query, inspect plans and statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blas::{BlasDb, EngineChoice, Translator};

fn main() {
    // The paper's running example (Fig. 1): a protein repository.
    let xml = r#"<ProteinDatabase>
        <ProteinEntry>
            <protein>
                <name>cytochrome c [validated]</name>
                <classification><superfamily>cytochrome c</superfamily></classification>
            </protein>
            <reference><refinfo>
                <authors><author>Evans, M.J.</author></authors>
                <year>2001</year>
                <title>The human somatic cytochrome c gene</title>
            </refinfo></reference>
        </ProteinEntry>
        <ProteinEntry>
            <protein>
                <name>hemoglobin alpha</name>
                <classification><superfamily>globin</superfamily></classification>
            </protein>
            <reference><refinfo>
                <authors><author>Smith, A.</author></authors>
                <year>1998</year>
                <title>Globin fold revisited</title>
            </refinfo></reference>
        </ProteinEntry>
    </ProteinDatabase>"#;

    let db = BlasDb::load(xml).expect("well-formed XML");
    println!(
        "Loaded: {} nodes, {} tags, depth {}",
        db.stats(xml.len()).nodes,
        db.stats(xml.len()).tags,
        db.stats(xml.len()).depth
    );
    println!("P-label domain m = {}\n", db.domain().m());

    // The paper's Fig. 2 query: titles of 2001 papers by Evans, M.J.
    // about the cytochrome c superfamily.
    let q = "/ProteinDatabase/ProteinEntry[protein//superfamily='cytochrome c']\
             /reference/refinfo[//author='Evans, M.J.' and year='2001']/title";

    // One call runs the whole pipeline: parse → decompose → bind →
    // lower → execute, here under the paper's recommended config.
    let result = db.query(q, EngineChoice::auto()).expect("valid query");
    println!("Query: {q}");
    for text in db.texts(&result).into_iter().flatten() {
        println!("  → {text}");
    }

    // Compare the four translators on the same query.
    println!("\n{:<12} {:>8} {:>10} {:>9}", "translator", "d-joins", "elements", "results");
    for (name, t) in [
        ("D-labeling", Translator::DLabeling),
        ("Split", Translator::Split),
        ("Push-up", Translator::PushUp),
        ("Unfold", Translator::Unfold),
    ] {
        let r = db.query(q, EngineChoice::rdbms().with_translator(t)).unwrap();
        println!(
            "{:<12} {:>8} {:>10} {:>9}",
            name, r.stats.d_joins, r.stats.elements_visited, r.stats.result_count
        );
    }

    // Show the generated relational algebra (Fig. 11 style) and SQL.
    println!("\nPush-up plan:\n{}", db.explain(q, Translator::PushUp).unwrap());
    println!("\nGenerated SQL:\n{}", db.explain_sql(q, Translator::PushUp).unwrap());

    // Persist the labeled, indexed form and reopen it memory-mapped:
    // the snapshot file is queried in place, with zero upfront decode.
    let path = std::env::temp_dir().join("blas_quickstart.snap");
    std::fs::write(&path, db.to_snapshot()).expect("write snapshot");
    let mapped = BlasDb::open_mapped(&path).expect("map snapshot");
    let again = mapped.query(q, EngineChoice::auto()).expect("valid query");
    assert_eq!(result.nodes, again.nodes);
    println!(
        "\nReopened mapped from {} ({} bytes): same {} result(s), zero decode",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        again.stats.result_count
    );
    std::fs::remove_file(&path).ok();
}
