//! End-to-end tour of the serving front door: an in-process server on
//! an ephemeral port, a wire client querying and mutating across
//! generations, the result cache hitting and being invalidated by a
//! publish, an admission rejection, and a graceful drain.
//!
//! ```sh
//! cargo run --release --example server_client
//! ```

use blas::BlasDb;
use blas_server::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let xml = blas_datagen::auction(1, 42);
    println!("Indexing Auction ×1 ({:.1} MB)…", xml.len() as f64 / 1e6);
    let db = Arc::new(BlasDb::load(&xml).expect("generator output is well-formed"));

    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral port");
    let addr = server.local_addr();
    println!("Server listening on {addr}\n");

    let mut client = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");

    // A query over the wire: the reply is stamped with the generation
    // it was answered from.
    let q = "/site/regions/asia/item/description";
    let first = client.query(q, "auto").unwrap();
    println!(
        "{q}\n  -> {} nodes at generation {} (cached: {})",
        first.count, first.generation, first.cached
    );

    // The repeat is a result-cache hit: same key (xpath, engine,
    // generation), the stored node array replays as bytes.
    let again = client.query(q, "auto").unwrap();
    assert!(again.cached && again.nodes == first.nodes);
    println!("  -> repeat served from the result cache (identical answer)");

    // A mutation publishes a new generation — and the publish hook
    // invalidates the superseded cache entries, so the next query is
    // an honest miss against the new tree.
    let generation = client
        .insert_subtree(0, "<regions><asia><item><description>wire-inserted</description></item></asia></regions>")
        .unwrap();
    let after = client.query(q, "auto").unwrap();
    println!(
        "\ninsert_subtree published generation {generation}; {q}\n  -> {} nodes (cached: {})",
        after.count, after.cached
    );
    assert!(!after.cached);
    assert_eq!(after.count, first.count + 1);

    // Admission control: a zero-permit server rejects with a typed
    // `overloaded` error instead of queueing.
    let tiny = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 0, ..Default::default() },
    )
    .unwrap();
    let mut bounced = Client::connect(tiny.local_addr(), Some(Duration::from_secs(10))).unwrap();
    let err = bounced.query(q, "auto").expect_err("zero permits");
    println!("\nzero-permit server says: {err} (is_overloaded: {})", err.is_overloaded());
    tiny.shutdown();

    // Server-side observability, then a graceful drain.
    let stats = client.stats().unwrap();
    println!("\nserver stats: {stats}");
    let final_stats = server.shutdown();
    println!(
        "\ndrained: served {} requests over {} connection(s), {} cache hit(s)",
        final_stats.served, final_stats.connections_accepted, final_stats.cache_hits
    );
}
