//! Domain example: analytics over the XMark-shaped auction site —
//! recursive DTD, attribute nodes, deep `parlist` nesting — including
//! the XMark benchmark queries the paper uses in Fig. 15.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use blas::{BlasDb, EngineChoice, Translator};
use blas_datagen::{auction, xmark_benchmark};

fn main() {
    let xml = auction(1, 42);
    println!("Generating + indexing Auction dataset ({:.1} MB)…", xml.len() as f64 / 1e6);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    let stats = db.stats(xml.len());
    println!(
        "Indexed {} nodes, {} tags, depth {} (recursive DTD: {})\n",
        stats.nodes,
        stats.tags,
        stats.depth,
        db.schema().is_recursive()
    );

    // Items per continent — child-axis chains are single selections.
    println!("Items per continent:");
    for continent in ["africa", "asia", "australia", "europe", "namerica", "samerica"] {
        let q = format!("/site/regions/{continent}/item");
        let r = db.query(&q, EngineChoice::auto()).unwrap();
        println!("  {continent:<10} {:>6}", r.stats.result_count);
    }

    // Deep recursion: listitems at any depth under category descriptions
    // (QA1). The recursive DTD makes Unfold enumerate every unrolling.
    // Range-scan-heavy queries like this are where sharded parallel
    // scans pay off: same plan, four scan workers.
    let qa1 = db.query("//category/description/parlist/listitem", EngineChoice::auto()).unwrap();
    let qa1_par = db
        .query("//category/description/parlist/listitem", EngineChoice::parallel(4))
        .unwrap();
    assert_eq!(qa1.nodes, qa1_par.nodes, "sharding is an execution detail");
    println!("\nQA1 listitems under category descriptions: {}", qa1.stats.result_count);
    println!(
        "  sequential {:?} vs 4-way sharded {:?}",
        qa1.stats.elapsed, qa1_par.stats.elapsed
    );

    // Items with shipping available in Asia (QA3 twig).
    let qa3 = db
        .query("/site/regions/asia/item[shipping]/description", EngineChoice::auto())
        .unwrap();
    println!("QA3 shippable Asian item descriptions: {}", qa3.stats.result_count);

    // Attribute nodes are first-class: auction references to people.
    let sellers = db
        .query("/site/open_auctions/open_auction/seller/@person", EngineChoice::auto())
        .unwrap();
    println!("Auctions with a seller attribute: {}", sellers.stats.result_count);

    // The XMark benchmark queries of Fig. 15 across translators (twig
    // engine, value predicates pre-stripped, like §5.3).
    println!(
        "\n{:<4} {:<50} {:>9} {:>9} {:>9}",
        "id", "xpath", "D-label", "Split", "Push-up"
    );
    for bq in xmark_benchmark() {
        let mut cells = Vec::new();
        for t in [Translator::DLabeling, Translator::Split, Translator::PushUp] {
            let r = db.query(bq.xpath, EngineChoice::twig().with_translator(t)).unwrap();
            cells.push(r.stats.elements_visited);
        }
        println!(
            "{:<4} {:<50} {:>9} {:>9} {:>9}",
            bq.id, bq.xpath, cells[0], cells[1], cells[2]
        );
    }
    println!("(cells = elements read; BLAS translators read fewer than the baseline)");
}
