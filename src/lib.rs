//! Workspace-root convenience crate for the BLAS reproduction.
//!
//! Re-exports the public APIs of every crate in the workspace so the
//! top-level `examples/` and `tests/` can use one import root.

pub use blas;
pub use blas_datagen as datagen;
pub use blas_engine as engine;
pub use blas_labeling as labeling;
pub use blas_storage as storage;
pub use blas_translate as translate;
pub use blas_xml as xml;
pub use blas_xpath as xpath;
